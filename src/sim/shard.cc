#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/logging.hh"

namespace tako
{

ShardPlan
ShardPlan::build(unsigned dimX, unsigned dimY, Tick routerDelay,
                 Tick linkDelay, unsigned shards)
{
    ShardPlan plan;
    plan.dimX = dimX ? dimX : 1;
    plan.dimY = dimY ? dimY : 1;
    plan.shards = std::clamp(shards, 1u, plan.dimX);
    // One boundary crossing costs at least one router and one link
    // traversal; that floor is the window inside which no shard can
    // observe another shard's same-window events.
    plan.quantum = std::max<Tick>(1, routerDelay + linkDelay);
    plan.columnShard.resize(plan.dimX);
    for (unsigned c = 0; c < plan.dimX; ++c)
        plan.columnShard[c] = static_cast<unsigned>(
            std::uint64_t{c} * plan.shards / plan.dimX);
    for (unsigned c = 0; c + 1 < plan.dimX; ++c) {
        if (plan.columnShard[c] != plan.columnShard[c + 1])
            plan.boundaryLinks += 2 * plan.dimY; // E + W directed links
    }
    return plan;
}

ShardedExecutor::ShardedExecutor(std::vector<EventQueue *> domains,
                                 Tick quantum, unsigned threads)
    : domains_(std::move(domains)), quantum_(std::max<Tick>(1, quantum))
{
    panic_if(domains_.empty(),
             "sharded executor needs at least one domain");
    for (const EventQueue *q : domains_)
        panic_if(q == nullptr, "sharded executor given a null domain");
    const unsigned n = static_cast<unsigned>(domains_.size());
    threads_ = threads == 0 ? n : std::clamp(threads, 1u, n);
    mail_.reserve(std::size_t{n} * n);
    for (std::size_t i = 0; i < std::size_t{n} * n; ++i)
        mail_.push_back(std::make_unique<SpscMailbox<ShardEvent>>());
    sendSeq_.resize(n);
    profiles_.resize(n);
    barrierWait_.resize(threads_);
    // Spinning assumes the releasing worker is running on another CPU.
    // When workers outnumber hardware threads (CI -j8 child fan-out,
    // small containers), a waiter's spin burns the very timeslice the
    // last arriver needs, turning each barrier into a scheduling
    // quantum — yield almost immediately instead.
    const unsigned hw = std::thread::hardware_concurrency();
    spinLimit_ = (hw != 0 && threads_ > hw) ? 16u : (1u << 14);
}

double
ShardedExecutor::barrierWaitSeconds() const
{
    double total = 0;
    for (const PaddedSeconds &w : barrierWait_)
        total += w.value;
    return total;
}

void
ShardedExecutor::send(unsigned src, unsigned dst, Tick when,
                      EventPriority prio, std::function<void()> fn)
{
    // Legacy keying: pack (source shard, send order) in the key layout,
    // which sorts exactly like the historical (src, srcSeq) drain order.
    const std::uint64_t key =
        (std::uint64_t{src} << StreamKeySource::kSeqBits) |
        sendSeq_[src].value;
    sendKeyed(src, dst, when, prio, key, 0, std::move(fn));
}

void
ShardedExecutor::sendKeyed(unsigned src, unsigned dst, Tick when,
                           EventPriority prio, std::uint64_t key,
                           std::uint32_t execStream,
                           std::function<void()> fn)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    panic_if(src >= n || dst >= n, "shard send %u -> %u outside 0..%u",
             src, dst, n - 1);
    if (src == dst) {
        EventQueue &q = *domains_[src];
        if (q.keyed())
            q.scheduleKeyed(when, std::move(fn), prio, key, execStream);
        else
            q.scheduleAbs(when, std::move(fn), prio);
        return;
    }
    ++sendSeq_[src].value;
    ShardEvent ev;
    ev.when = when;
    ev.priority = prio;
    ev.key = key;
    ev.execStream = execStream;
    ev.fn = std::move(fn);
    const bool pushed = mail_[std::size_t{src} * n + dst]->tryPush(
        std::move(ev));
    panic_if(!pushed,
             "shard %u -> %u mailbox full (%zu events in one window); "
             "the quantum produced more cross-shard traffic than the "
             "ring holds",
             src, dst, mail_[0]->capacity());
}

void
ShardedExecutor::drainInbox(unsigned shard, Tick windowStart)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    std::vector<ShardEvent> batch;
    ShardEvent ev;
    DomainProfile &prof = profiles_[shard];
    for (unsigned src = 0; src < n; ++src) {
        SpscMailbox<ShardEvent> &mb = *mail_[std::size_t{src} * n + shard];
        std::uint64_t depth = 0;
        while (mb.tryPop(ev)) {
            ++depth;
            panic_if(ev.when < windowStart,
                     "cross-shard event for shard %u at tick %llu "
                     "arrived in the window starting at %llu: the "
                     "sender violated the lookahead quantum (%llu)",
                     shard, (unsigned long long)ev.when,
                     (unsigned long long)windowStart,
                     (unsigned long long)quantum_);
            batch.push_back(std::move(ev));
        }
        // Drains empty the ring, so the pop count IS the depth this
        // mailbox reached during the finished window.
        if (depth > prof.maxInboxDepth)
            prof.maxInboxDepth = depth;
    }
    if (batch.empty())
        return;
    // Insert in the global merge order (tick, priority, key). Keyed
    // queues store the carried key directly, so same-tick arrivals land
    // in the partition-invariant total order; legacy queues assign their
    // tie-break seqs in insertion order, and the legacy key packs
    // (src, srcSeq), reproducing the historical drain order.
    std::stable_sort(batch.begin(), batch.end(),
                     [](const ShardEvent &a, const ShardEvent &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         if (a.priority != b.priority)
                             return a.priority < b.priority;
                         return a.key < b.key;
                     });
    EventQueue &q = *domains_[shard];
    const bool keyed = q.keyed();
    for (ShardEvent &in : batch) {
        if (keyed)
            q.scheduleKeyed(in.when, std::move(in.fn), in.priority,
                            in.key, in.execStream);
        else
            q.scheduleAbs(in.when, std::move(in.fn), in.priority);
    }
    prof.received += batch.size();
    delivered_.fetch_add(batch.size(), std::memory_order_relaxed);
}

void
ShardedExecutor::runSolo(unsigned shard)
{
    EventQueue &q = *domains_[shard];
    // A solo domain may run unboundedly: every other domain is idle and
    // nothing can reach this one's inbox until it sends. The first
    // outbound send ends the free run — from then on another domain has
    // future work, and lockstep windows resume from this domain's
    // current position.
    const std::uint64_t sentBefore = sendSeq_[shard].value;
    const std::uint64_t firedBefore = q.eventsFired();
    while (sendSeq_[shard].value == sentBefore && q.step()) {}
    const std::uint64_t fired = q.eventsFired() - firedBefore;
    DomainProfile &prof = profiles_[shard];
    prof.executed += fired;
    if (fired > prof.maxRoundEvents)
        prof.maxRoundEvents = fired;
}

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

} // namespace

ShardedExecutor::RoundState
ShardedExecutor::barrierSync(unsigned worker, bool completion)
{
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        threads_) {
        // Last arriver: advance the round while everyone else spins,
        // then release them. arrived_ must reset before the generation
        // bump — workers may hit the next barrier immediately.
        if (completion)
            advanceRound();
        arrived_.store(0, std::memory_order_relaxed);
        generation_.store(gen + 1, std::memory_order_release);
    } else {
        // A quantum window is typically a few events per domain, far
        // cheaper than a futex round trip, so spin first and only
        // account (and yield) once the wait is clearly a straggler
        // stall. The host-clock reads feed host.* gauges only.
        unsigned spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen) {
            cpuRelax();
            if (++spins >= spinLimit_) {
                // takolint: ok(D2, stall time feeds only host.* gauges)
                const auto t0 = std::chrono::steady_clock::now();
                while (generation_.load(std::memory_order_acquire) ==
                       gen)
                    std::this_thread::yield();
                // takolint: ok(D2, stall time feeds only host.* gauges)
                const auto t1 = std::chrono::steady_clock::now();
                barrierWait_[worker].value +=
                    std::chrono::duration<double>(t1 - t0).count();
                break;
            }
        }
    }
    return RoundState{windowStart_, soloDomain_, done_};
}

void
ShardedExecutor::advanceRound()
{
    ++rounds_;
    const unsigned prevSolo = soloDomain_;
    soloDomain_ = kNoSolo;

    bool anyMail = false;
    for (const auto &mb : mail_) {
        if (!mb->empty()) {
            anyMail = true;
            break;
        }
    }
    unsigned pendingDomains = 0;
    unsigned pendingIdx = 0;
    Tick minNext = 0;
    for (unsigned i = 0; i < domains_.size(); ++i) {
        Tick t = 0;
        if (domains_[i]->nextEventTime(t)) {
            if (pendingDomains == 0 || t < minNext)
                minNext = t;
            pendingIdx = i;
            ++pendingDomains;
        }
    }

    if (!anyMail && pendingDomains == 0) {
        done_ = true;
        return;
    }
    if (anyMail) {
        // In-flight mail was sent no earlier than the finished window
        // (or the solo domain's final position), and every send is
        // timestamped at least one quantum ahead — so the next lockstep
        // window starts safely below every undelivered timestamp.
        if (prevSolo != kNoSolo) {
            // A solo run stops at its first outbound send, which can
            // leave events pending at the very tick it stopped on (same
            // tick, later key) or just after. The resumed window must
            // start at or below every pending event, not one past the
            // solo clock — otherwise a leftover event executes inside a
            // window that already began beyond it, and its quantum-ahead
            // sends land below the *next* window start (a lookahead
            // violation at the receiver).
            Tick w = domains_[prevSolo]->now() + 1;
            if (pendingDomains > 0 && minNext < w)
                w = minNext;
            windowStart_ = w;
        } else {
            windowStart_ = windowStart_ + quantum_;
        }
        return;
    }
    // No mail in flight: jump straight to the earliest pending event.
    // With a single busy domain there is nothing to synchronize against
    // until it sends, so let it run free.
    windowStart_ = minNext;
    if (pendingDomains == 1) {
        soloDomain_ = pendingIdx;
        ++soloRounds_;
    }
}

void
ShardedExecutor::workerLoop(unsigned worker)
{
    const unsigned n = static_cast<unsigned>(domains_.size());
    Tick start = 0;
    unsigned solo = kNoSolo;
    while (true) {
        // Execute phase: run this round's windows. All mailbox pushes
        // happen here, never concurrently with a drain.
        if (solo != kNoSolo) {
            if (solo % threads_ == worker)
                runSolo(solo);
        } else {
            for (unsigned s = worker; s < n; s += threads_) {
                EventQueue &q = *domains_[s];
                const std::uint64_t before = q.eventsFired();
                q.runThrough(start + quantum_ - 1);
                const std::uint64_t fired = q.eventsFired() - before;
                DomainProfile &prof = profiles_[s];
                prof.executed += fired;
                if (fired > prof.maxRoundEvents)
                    prof.maxRoundEvents = fired;
                if (fired == 0)
                    ++prof.idleRounds;
            }
        }
        const RoundState rs = barrierSync(worker, true);
        if (rs.done)
            return;
        // Drain phase: deliver the barrier snapshot of every inbox for
        // the next round. The trailing barrier keeps these pops
        // disjoint from the next execute phase's pushes, so the
        // delivered set is a function of simulation state alone.
        if (rs.solo == kNoSolo) {
            for (unsigned s = worker; s < n; s += threads_)
                drainInbox(s, rs.start);
        }
        barrierSync(worker, false);
        start = rs.start;
        solo = rs.solo;
    }
}

void
ShardedExecutor::run()
{
    windowStart_ = 0;
    soloDomain_ = kNoSolo;
    done_ = false;
    arrived_.store(0, std::memory_order_relaxed);
    generation_.store(0, std::memory_order_release);
    std::vector<std::thread> workers;
    workers.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w)
        workers.emplace_back([this, w] { workerLoop(w); });
    for (std::thread &t : workers)
        t.join();
}

void
runLanes(unsigned lanes, const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    const unsigned n = std::clamp<unsigned>(
        lanes, 1, static_cast<unsigned>(jobs.size()));
    if (n == 1) {
        for (const std::function<void()> &job : jobs)
            job();
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        pool.emplace_back([w, n, &jobs] {
            for (std::size_t i = w; i < jobs.size(); i += n)
                jobs[i]();
        });
    }
    for (std::thread &t : pool)
        t.join();
}

} // namespace tako
