/**
 * @file
 * Periodic stats sampler: snapshots selected counters into the registry's
 * time series every N simulated ticks, so benches can plot trajectories
 * (e.g., DRAM traffic per phase over time) instead of end-of-run totals.
 *
 * The sampler rides the EventQueue's advance hook rather than scheduling
 * its own events: it never keeps the queue from draining, never extends
 * the simulation past its last real event, and costs nothing when no
 * sampler is installed. Samples are taken when simulated time first
 * reaches each interval boundary, before the events at that tick run, so
 * a sample at tick T reflects everything that completed strictly before T.
 */

#ifndef TAKO_SIM_SAMPLER_HH
#define TAKO_SIM_SAMPLER_HH

#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tako
{

class StatsSampler
{
  public:
    /**
     * Sample counters matching @p patterns ("prefix*suffix" wildcards;
     * empty means every counter registered so far) every @p interval
     * ticks. Installs itself as @p eq's advance hook; at most one
     * sampler per queue.
     */
    StatsSampler(EventQueue &eq, StatsRegistry &stats, Tick interval,
                 const std::vector<std::string> &patterns = {})
        : eq_(eq), stats_(stats), interval_(interval),
          next_(eq.now() + interval)
    {
        panic_if(interval_ == 0, "sampler interval must be nonzero");
        StatsTimeSeries &ts = stats_.timeSeries();
        ts.interval = interval_;
        if (patterns.empty()) {
            for (const auto &kv : stats_.counters())
                ts.names.push_back(kv.first);
        } else {
            for (const std::string &p : patterns) {
                for (std::string &n : stats_.counterNamesMatching(p))
                    ts.names.push_back(std::move(n));
            }
        }
        eq_.setAdvanceHook([this](Tick to) { return onAdvance(to); },
                           next_);
    }

    ~StatsSampler() { eq_.clearAdvanceHook(); }

    StatsSampler(const StatsSampler &) = delete;
    StatsSampler &operator=(const StatsSampler &) = delete;

  private:
    /** Returns the next boundary, which becomes the queue's watermark. */
    Tick
    onAdvance(Tick to)
    {
        while (next_ <= to) {
            stats_.recordSample(next_);
            next_ += interval_;
        }
        return next_;
    }

    EventQueue &eq_;
    StatsRegistry &stats_;
    Tick interval_;
    Tick next_;
};

} // namespace tako

#endif // TAKO_SIM_SAMPLER_HH
