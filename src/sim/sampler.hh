/**
 * @file
 * Compatibility shim: the PR-1 StatsSampler was unified into takomon's
 * mon::TimeSeriesSink (src/mon/sink.hh), which keeps the same advance-
 * hook sampling semantics and adds takomon-v1 file output, histogram-
 * derived series, and progress heartbeats behind one hook.
 *
 * Deprecated: include "mon/sink.hh" and use mon::TimeSeriesSink in new
 * code. The alias (and the back-compat constructor it resolves to)
 * stays so existing call sites and tests keep compiling unchanged.
 */

#ifndef TAKO_SIM_SAMPLER_HH
#define TAKO_SIM_SAMPLER_HH

#include "mon/sink.hh"

namespace tako
{

using StatsSampler = mon::TimeSeriesSink;

} // namespace tako

#endif // TAKO_SIM_SAMPLER_HH
