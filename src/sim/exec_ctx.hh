/**
 * @file
 * Per-thread execution context for domain-decomposed simulation.
 *
 * Every event in a decomposed run executes "at" a logical stream (a tile,
 * or the reserved system stream 0) inside one shard domain. The kernel
 * publishes that location here while the event's callback runs, so model
 * code that migrates between tiles (memory transactions walking the NoC)
 * can always reach the queue it is currently executing on without
 * carrying an EventQueue reference through every coroutine frame.
 *
 * The context is thread-local: one worker thread executes at most one
 * domain's events at a time (the sharded executor's windows are
 * per-domain sequential), so a plain write in EventQueue::step() is
 * race-free. Monolithic runs use the same mechanism with one domain.
 */

#ifndef TAKO_SIM_EXEC_CTX_HH
#define TAKO_SIM_EXEC_CTX_HH

#include <cstdint>

#include "sim/types.hh"

namespace tako
{

class EventQueue;

/** Where the current event is executing: queue, shard domain, stream. */
struct ExecCtx
{
    EventQueue *queue = nullptr; ///< queue whose event is running
    std::uint32_t domain = 0;    ///< shard domain index (stats lanes)
    std::uint32_t stream = 0;    ///< logical source stream (tile + 1)
};

namespace detail
{
inline thread_local ExecCtx execCtx;
} // namespace detail

inline ExecCtx &execCtx() { return detail::execCtx; }

/** Shard-domain index of the running event (0 when monolithic). */
inline std::uint32_t ctxDomain() { return detail::execCtx.domain; }

/** Logical stream of the running event (0 = system/default). */
inline std::uint32_t ctxStream() { return detail::execCtx.stream; }

/** Queue the current event is executing on (null outside events). */
inline EventQueue *ctxQueue() { return detail::execCtx.queue; }

/**
 * RAII stream override for code that starts work on behalf of another
 * stream from a context that has none (per-domain guest bootstrap).
 */
class ScopedStream
{
  public:
    explicit ScopedStream(std::uint32_t stream)
        : saved_(detail::execCtx.stream)
    {
        detail::execCtx.stream = stream;
    }

    ~ScopedStream() { detail::execCtx.stream = saved_; }

    ScopedStream(const ScopedStream &) = delete;
    ScopedStream &operator=(const ScopedStream &) = delete;

  private:
    std::uint32_t saved_;
};

} // namespace tako

#endif // TAKO_SIM_EXEC_CTX_HH
