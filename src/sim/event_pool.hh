/**
 * @file
 * Intrusive pooled event nodes for the discrete-event kernel.
 *
 * Every scheduled callback used to be a std::function inside a
 * priority_queue entry: one heap allocation per event for any capture
 * larger than the libstdc++ SBO (16 bytes), plus vector churn on heap
 * sifts. An EventNode is instead a fixed 128-byte slab-pooled record with
 * the callable constructed in place; callables that genuinely do not fit
 * the inline buffer fall back to a single heap cell (rare — every
 * kernel-internal capture fits). Nodes are singly linked so the calendar
 * queue can chain them into per-slot lanes and the pool can chain them
 * into a free list without any auxiliary storage.
 */

#ifndef TAKO_SIM_EVENT_POOL_HH
#define TAKO_SIM_EVENT_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tako
{

/** What an EventNode's dispatch stub is asked to do with its callable. */
enum class EventOp
{
    Run,  ///< invoke, then destroy
    Drop, ///< destroy only (queue reset / teardown)
};

struct EventNode
{
    /// Inline callable storage; sized so the whole node is 128 bytes.
    static constexpr std::size_t kInlineBytes = 80;

    Tick when;
    /**
     * Total-order tie-break key for events at the same (tick, priority).
     * Monolithic queues use a per-queue insertion counter; decomposed
     * runs pack a partition-invariant (stream, per-stream seq) pair so
     * the same order falls out at every shard count (see event_queue.hh).
     */
    std::uint64_t seq;
    EventNode *next;
    /// One indirect call replaces the std::function vtable pair.
    void (*dispatch)(EventNode &, EventOp);
    std::int8_t priority;
    /// Stream context published in ExecCtx while the callback runs.
    std::uint32_t execStream;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];

    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineBytes &&
        alignof(F) <= alignof(std::max_align_t);

    /** Construct @p fn into this node and set the dispatch stub. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(storage)) D(std::forward<F>(fn));
            dispatch = &inlineStub<D>;
        } else {
            ::new (static_cast<void *>(storage))
                D *(new D(std::forward<F>(fn)));
            dispatch = &heapStub<D>;
        }
    }

    void run() { dispatch(*this, EventOp::Run); }
    void drop() { dispatch(*this, EventOp::Drop); }

  private:
    template <typename F>
    static void
    inlineStub(EventNode &n, EventOp op)
    {
        F *f = std::launder(reinterpret_cast<F *>(n.storage));
        if (op == EventOp::Run)
            (*f)();
        f->~F();
    }

    template <typename F>
    static void
    heapStub(EventNode &n, EventOp op)
    {
        F *f = *std::launder(reinterpret_cast<F **>(n.storage));
        if (op == EventOp::Run)
            (*f)();
        delete f;
    }
};

static_assert(sizeof(EventNode) == 128, "EventNode should stay one or two "
                                        "cache lines; fix kInlineBytes");

/**
 * Free-list slab allocator for EventNodes. Slabs are never returned to
 * the OS during the pool's lifetime: a simulation's steady-state event
 * population bounds the pool's high-water mark, and recycling through the
 * free list means zero malloc traffic once warmed up. Single-threaded by
 * design, like the rest of the kernel.
 */
class EventPool
{
  public:
    static constexpr std::size_t kSlabNodes = 256;

    EventPool() = default;
    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    EventNode *
    alloc()
    {
        if (!free_) [[unlikely]]
            grow();
        EventNode *n = free_;
        free_ = n->next;
        --freeCount_;
        ++allocs_;
        return n;
    }

    void
    release(EventNode *n)
    {
        n->next = free_;
        free_ = n;
        ++freeCount_;
    }

    /** Total nodes across all slabs. */
    std::size_t capacity() const { return slabs_.size() * kSlabNodes; }
    std::size_t freeCount() const { return freeCount_; }
    std::size_t slabCount() const { return slabs_.size(); }
    std::uint64_t totalAllocs() const { return allocs_; }

  private:
    void
    grow()
    {
        // takolint: ok(L2, the pool's own slab allocation)
        slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
        EventNode *slab = slabs_.back().get();
        // Chain the fresh slab back-to-front so nodes hand out in
        // address order, which keeps hot nodes packed.
        for (std::size_t i = kSlabNodes; i-- > 0;) {
            slab[i].next = free_;
            free_ = &slab[i];
        }
        freeCount_ += kSlabNodes;
    }

    EventNode *free_ = nullptr;
    std::size_t freeCount_ = 0;
    std::uint64_t allocs_ = 0;
    std::vector<std::unique_ptr<EventNode[]>> slabs_;
};

} // namespace tako

#endif // TAKO_SIM_EVENT_POOL_HH
