/**
 * @file
 * Tile-to-domain routing for decomposed single-run simulation.
 *
 * A decomposed run partitions the model by the ShardPlan's column bands:
 * each shard domain owns its tiles' cores, engines, private caches, L3
 * bank slices, and mesh routers, and executes their events on its own
 * EventQueue. Model code that moves work between tiles — a memory
 * transaction walking the NoC, a directory message, an interrupt — goes
 * through Domains::post()/hopTo(), which
 *
 *  - draws the event's tie-break key from the *sending* stream's counter
 *    (owned by the executing domain, so no atomics), and
 *  - delivers same-domain work directly and cross-domain work through
 *    the sharded executor's mailboxes.
 *
 * Because keys are partition-invariant (see StreamKeySource) and every
 * cross-domain post is at least one conservative quantum in the future,
 * the merged event order — and therefore every simulation-visible
 * metric — is bit-identical at any shard count, including one. A
 * monolithic run uses the very same code with a single domain.
 */

#ifndef TAKO_SIM_DOMAINS_HH
#define TAKO_SIM_DOMAINS_HH

#include <coroutine>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/exec_ctx.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"

namespace tako
{

class Domains
{
  public:
    Domains() = default;
    Domains(const Domains &) = delete;
    Domains &operator=(const Domains &) = delete;

    /**
     * Bind the plan to its per-domain queues (queues are borrowed; one
     * per shard) and install the shared stream-key table on each, which
     * switches them all to partition-invariant tie-break order.
     */
    void
    init(const ShardPlan &plan, std::vector<EventQueue *> queues)
    {
        panic_if(queues.size() != plan.shards,
                 "domain count %zu != plan shards %u", queues.size(),
                 plan.shards);
        plan_ = plan;
        queues_ = std::move(queues);
        const std::size_t tiles =
            std::size_t{plan_.dimX} * plan_.dimY;
        streams_ = std::make_unique<StreamKeySource>(tiles + 1);
        for (unsigned d = 0; d < plan_.shards; ++d) {
            queues_[d]->setStreamKeys(streams_.get());
            queues_[d]->setDomainIndex(d);
        }
        // First tile (row 0, leftmost owned column) of each domain:
        // the anchor stream for domain-wide control work (per-domain
        // bootstrap, registry replica updates).
        homeTile_.assign(plan_.shards, 0);
        for (unsigned c = plan_.dimX; c-- > 0;)
            homeTile_[plan_.columnShard[c]] = static_cast<int>(c);
    }

    bool active() const { return !queues_.empty(); }
    const ShardPlan &plan() const { return plan_; }
    unsigned domainCount() const
    {
        return static_cast<unsigned>(queues_.size());
    }
    Tick quantum() const { return plan_.quantum; }
    unsigned tiles() const { return plan_.dimX * plan_.dimY; }

    unsigned
    domainOf(int tile) const
    {
        return plan_.shardOf(static_cast<unsigned>(tile));
    }

    /** Logical stream of a tile; stream 0 is the system/default. */
    static std::uint32_t
    streamOf(int tile)
    {
        return static_cast<std::uint32_t>(tile) + 1;
    }

    EventQueue &queueOfDomain(unsigned d) { return *queues_[d]; }
    EventQueue &queueOf(int tile) { return *queues_[domainOf(tile)]; }
    const std::vector<EventQueue *> &queues() const { return queues_; }

    /** Anchor tile for domain-wide control work in domain @p d. */
    int homeTile(unsigned d) const { return homeTile_[d]; }

    /** Tile the current event executes at (@p fallback when the context
     *  runs on the system stream, e.g. pre-run setup). */
    int
    ctxTile(int fallback = 0) const
    {
        const std::uint32_t s = detail::execCtx.stream;
        return s == 0 ? fallback : static_cast<int>(s) - 1;
    }

    StreamKeySource &streams() { return *streams_; }

    /** Executor carrying cross-domain posts; null while single-threaded
     *  (before/after ShardedExecutor::run, or a monolithic run). */
    void setExecutor(ShardedExecutor *exec) { exec_ = exec; }

    /**
     * Schedule @p fn to execute at tile @p dstTile at absolute tick
     * @p when. The key is drawn from the calling context's stream (its
     * counter is owned by the executing domain); the event runs with
     * the destination tile's stream as its context. Cross-domain posts
     * must be at least one quantum ahead of the sender's clock.
     */
    template <typename F>
    void
    postAbs(int dstTile, Tick when, F &&fn,
            EventPriority prio = EventPriority::Default)
    {
        const unsigned dstDom = domainOf(dstTile);
        const std::uint64_t key = streams_->next(detail::execCtx.stream);
        const std::uint32_t es = streamOf(dstTile);
        EventQueue *cq = detail::execCtx.queue;
        if (!exec_ || !cq || cq == queues_[dstDom]) {
            // takolint: ok(X2, the router itself: same-domain or pre-run posts land directly, guarded by the cq == queues_[dstDom] test above)
            queues_[dstDom]->scheduleKeyed(when, std::forward<F>(fn),
                                           prio, key, es);
            return;
        }
        panic_if(when < cq->now() + plan_.quantum,
                 "cross-domain post to tile %d at tick %llu from tick "
                 "%llu violates the lookahead quantum (%llu)",
                 dstTile, (unsigned long long)when,
                 (unsigned long long)cq->now(),
                 (unsigned long long)plan_.quantum);
        exec_->sendKeyed(cq->domainIndex(), dstDom, when, prio, key, es,
                         std::forward<F>(fn));
    }

    /** postAbs at (current context time + @p delta). */
    template <typename F>
    void
    post(int dstTile, Tick delta, F &&fn,
         EventPriority prio = EventPriority::Default)
    {
        EventQueue *cq = detail::execCtx.queue;
        const Tick now = cq ? cq->now() : queueOf(dstTile).now();
        postAbs(dstTile, now + delta, std::forward<F>(fn), prio);
    }

    /**
     * Awaitable that moves the coroutine to tile @p dstTile, resuming
     * there at absolute tick @p when. Everything the coroutine does
     * after the hop — schedules, stats, state touches — happens in the
     * destination tile's domain and draws keys from its stream.
     */
    auto
    hopToAbs(int dstTile, Tick when,
             EventPriority prio = EventPriority::Default)
    {
        struct Hop
        {
            Domains &d;
            int tile;
            Tick when;
            EventPriority prio;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                d.postAbs(tile, when, [h]() { h.resume(); }, prio);
            }

            void await_resume() const noexcept {}
        };
        return Hop{*this, dstTile, when, prio};
    }

    /** hopToAbs at (current context time + @p delta). */
    auto
    hopTo(int dstTile, Tick delta,
          EventPriority prio = EventPriority::Default)
    {
        EventQueue *cq = detail::execCtx.queue;
        const Tick now = cq ? cq->now() : queueOf(dstTile).now();
        return hopToAbs(dstTile, now + delta, prio);
    }

  private:
    ShardPlan plan_;
    std::vector<EventQueue *> queues_;
    std::unique_ptr<StreamKeySource> streams_;
    std::vector<int> homeTile_;
    ShardedExecutor *exec_ = nullptr;
};

} // namespace tako

#endif // TAKO_SIM_DOMAINS_HH
