/**
 * @file
 * Lightweight statistics registry.
 *
 * Components create named counters/histograms under a hierarchical dotted
 * name ("tile3.l2.misses"), optionally attaching a unit and description at
 * registration. Benches read them back by name, dump all as text, or dump
 * machine-readable JSON (dumpJson). A registry can also carry a sampled
 * time series of selected counters (see mon/sink.hh) so benches can plot
 * trajectories instead of end-of-run totals.
 */

#ifndef TAKO_SIM_STATS_HH
#define TAKO_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/** A scalar, accumulating statistic. */
class Counter
{
  public:
    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1; return *this; }
    void operator++(int) { value_ += 1; }
    double value() const { return value_; }
    /** Overwrite the value; for host-side gauges (wall clock, rates). */
    void set(double v) { value_ = v; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** A histogram over fixed-width buckets plus mean tracking. */
class Histogram
{
  public:
    Histogram() : Histogram(16, 8) {}

    /** @p num_buckets buckets of width @p bucket_width; overflow last. */
    Histogram(unsigned num_buckets, std::uint64_t bucket_width)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {
    }

    void
    sample(std::uint64_t v)
    {
        // Skip the integer division for sub-bucket-width values: latency
        // breakdowns sample several mostly-zero components per access,
        // which would otherwise put six divides on the L1-hit path.
        std::size_t idx = v < width_ ? 0 : v / width_;
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        ++count_;
        sum_ += static_cast<double>(v);
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    std::uint64_t bucketWidth() const { return width_; }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t max_ = 0;
};

/** Unit/description metadata attached to a stat at registration. */
struct StatMeta
{
    std::string unit;
    std::string desc;
};

/**
 * Time series of selected counters, filled by a mon::TimeSeriesSink
 * during the run: samples[i][j] is the value of names[j] at simulated
 * tick ticks[i].
 */
struct StatsTimeSeries
{
    Tick interval = 0;
    std::vector<std::string> names;
    std::vector<Tick> ticks;
    std::vector<std::vector<double>> samples;

    bool enabled() const { return interval != 0; }
    std::size_t numSamples() const { return ticks.size(); }
};

/**
 * Registry of named statistics. Owns all stats; references returned by
 * counter()/histogram() stay valid for the registry's lifetime. Copyable
 * so a finished run's stats can be snapshotted into RunMetrics.
 */
class StatsRegistry
{
  public:
    Counter &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Create/find @p name, attaching unit/description metadata. */
    Counter &
    counter(const std::string &name, const std::string &unit,
            const std::string &desc)
    {
        setMeta(name, unit, desc);
        return counters_[name];
    }

    /**
     * Stable-pointer form of counter(): hot paths cache the handle at
     * component construction instead of re-hashing the name on every
     * increment. std::map nodes never move, so the pointer stays valid
     * for the registry's lifetime regardless of later registrations.
     */
    Counter *
    handle(const std::string &name)
    {
        return &counters_[name];
    }

    Counter *
    handle(const std::string &name, const std::string &unit,
           const std::string &desc)
    {
        return &counter(name, unit, desc);
    }

    /** Find @p name, or create it with the default geometry (16 x 8). */
    Histogram &
    histogram(const std::string &name)
    {
        return histograms_[name];
    }

    /**
     * Find-or-create with explicit geometry. Re-requesting an existing
     * histogram with different parameters is a hard error: the caller
     * would observe bucket semantics it did not ask for.
     */
    Histogram &
    histogram(const std::string &name, unsigned num_buckets,
              std::uint64_t bucket_width, const std::string &unit = "",
              const std::string &desc = "")
    {
        if (!unit.empty() || !desc.empty())
            setMeta(name, unit, desc);
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_
                     .emplace(name, Histogram(num_buckets, bucket_width))
                     .first;
        } else {
            panic_if(it->second.numBuckets() != num_buckets ||
                         it->second.bucketWidth() != bucket_width,
                     "histogram '%s' re-requested with mismatched "
                     "parameters (%u x %llu, registered %u x %llu)",
                     name.c_str(), num_buckets,
                     (unsigned long long)bucket_width,
                     it->second.numBuckets(),
                     (unsigned long long)it->second.bucketWidth());
        }
        return it->second;
    }

    /** Stable-pointer form of histogram(); same contract as handle(). */
    Histogram *
    histogramHandle(const std::string &name, unsigned num_buckets,
                    std::uint64_t bucket_width, const std::string &unit = "",
                    const std::string &desc = "")
    {
        return &histogram(name, num_buckets, bucket_width, unit, desc);
    }

    /** Value of a counter; 0 if it was never created. */
    double
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second.value();
    }

    /** Sum of all counters whose name matches "prefix*suffix" pattern. */
    double sumMatching(const std::string &pattern) const;

    /** Names of all counters matching "prefix*suffix" (sorted). */
    std::vector<std::string>
    counterNamesMatching(const std::string &pattern) const;

    /** Names of all histograms matching "prefix*suffix" (sorted). */
    std::vector<std::string>
    histogramNamesMatching(const std::string &pattern) const;

    /** Metadata for @p name; nullptr if none was registered. */
    const StatMeta *
    meta(const std::string &name) const
    {
        auto it = meta_.find(name);
        return it == meta_.end() ? nullptr : &it->second;
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    StatsTimeSeries &timeSeries() { return timeseries_; }
    const StatsTimeSeries &timeSeries() const { return timeseries_; }

    /** Append one time-series sample: timeseries_.names read at @p tick. */
    void recordSample(Tick tick);

    void dump(std::ostream &os) const;

    /**
     * Dump every counter, histogram, and the time series (if sampled) as
     * one JSON object, with units/descriptions where registered.
     * @p header pairs are emitted first as top-level string fields
     * (e.g. {"git_rev", "abc1234"}); @p numericHeader pairs follow as
     * top-level number fields (e.g. {"host_seconds", 1.25}).
     */
    void dumpJson(std::ostream &os,
                  const std::vector<std::pair<std::string, std::string>>
                      &header = {},
                  const std::vector<std::pair<std::string, double>>
                      &numericHeader = {}) const;

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
        timeseries_.ticks.clear();
        timeseries_.samples.clear();
    }

  private:
    void
    setMeta(const std::string &name, const std::string &unit,
            const std::string &desc)
    {
        StatMeta &m = meta_[name];
        if (m.unit.empty())
            m.unit = unit;
        if (m.desc.empty())
            m.desc = desc;
    }

    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, StatMeta> meta_;
    StatsTimeSeries timeseries_;
};

namespace json
{

/** Write @p s as a JSON string literal (quoted, escaped). */
void writeString(std::ostream &os, const std::string &s);

/** Write @p v as a JSON number (integral values without a fraction). */
void writeNumber(std::ostream &os, double v);

} // namespace json

} // namespace tako

#endif // TAKO_SIM_STATS_HH
