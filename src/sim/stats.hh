/**
 * @file
 * Lightweight statistics registry.
 *
 * Components create named counters/histograms under a hierarchical dotted
 * name ("tile3.l2.misses"), optionally attaching a unit and description at
 * registration. Benches read them back by name, dump all as text, or dump
 * machine-readable JSON (dumpJson). A registry can also carry a sampled
 * time series of selected counters (see mon/sink.hh) so benches can plot
 * trajectories instead of end-of-run totals.
 */

#ifndef TAKO_SIM_STATS_HH
#define TAKO_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/exec_ctx.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tako
{

/**
 * A scalar, accumulating statistic.
 *
 * In a domain-decomposed run (StatsRegistry::enableLanes) every
 * accumulation lands in the executing domain's private lane, so shard
 * workers never contend on a cache line. Lane partials merge exactly:
 * every simulated increment is integer-valued (event counts, byte
 * counts, integral energy units), and integer sums below 2^53 are exact
 * in a double regardless of addition order — so the merged total is
 * bit-identical to the monolithic accumulation.
 */
class Counter
{
  public:
    Counter() = default;

    /** Snapshots fold lanes into the plain value. */
    Counter(const Counter &o) : value_(o.value()) {}

    Counter &
    operator=(const Counter &o)
    {
        value_ = o.value();
        lanes_.reset();
        laneCount_ = 0;
        return *this;
    }

    Counter &
    operator+=(double v)
    {
        if (lanes_)
            lanes_[ctxDomain()] += v;
        else
            value_ += v;
        return *this;
    }

    Counter &operator++() { return *this += 1; }
    void operator++(int) { *this += 1; }

    double
    value() const
    {
        double v = value_;
        for (unsigned i = 0; i < laneCount_; ++i)
            v += lanes_[i];
        return v;
    }

    /** Overwrite the value; for host-side gauges (wall clock, rates).
     *  Only meaningful outside the decomposed hot path (pre/post-run). */
    void
    set(double v)
    {
        value_ = v;
        for (unsigned i = 0; i < laneCount_; ++i)
            lanes_[i] = 0;
    }

    void reset() { set(0); }

    /** Allocate @p n per-domain lanes (idempotent). */
    void
    enableLanes(unsigned n)
    {
        if (lanes_)
            return;
        lanes_ = std::make_unique<double[]>(n);
        std::fill(lanes_.get(), lanes_.get() + n, 0.0);
        laneCount_ = n;
    }

    bool hasLanes() const { return static_cast<bool>(lanes_); }

    /**
     * Domain @p d's partial (mid-run safe: each domain reads its own).
     * Domain 0's partial carries the unlaned base (values set() before
     * lanes existed, e.g. at construction), so partials always sum to
     * value() exactly.
     */
    double
    laneValue(unsigned d) const
    {
        const double base = d == 0 ? value_ : 0.0;
        return base + (lanes_ ? lanes_[d] : 0.0);
    }

    /** Fold lane partials into the plain value (post-run, single thread). */
    void
    mergeLanes()
    {
        if (!lanes_)
            return;
        value_ = value();
        std::fill(lanes_.get(), lanes_.get() + laneCount_, 0.0);
    }

  private:
    double value_ = 0;
    std::unique_ptr<double[]> lanes_; ///< per-domain partials (optional)
    unsigned laneCount_ = 0;
};

/** A histogram over fixed-width buckets plus mean tracking. */
class Histogram
{
  public:
    Histogram() : Histogram(16, 8) {}

    /** @p num_buckets buckets of width @p bucket_width; overflow last. */
    Histogram(unsigned num_buckets, std::uint64_t bucket_width)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {
    }

    /** Snapshots fold lanes into the base fields. */
    Histogram(const Histogram &o)
        : buckets_(o.buckets_), width_(o.width_), count_(o.count_),
          sum_(o.sum_), max_(o.max_)
    {
        for (unsigned i = 0; i < o.laneCount_; ++i) {
            const Histogram &l = o.lanes_[i];
            for (std::size_t b = 0; b < buckets_.size(); ++b)
                buckets_[b] += l.buckets_[b];
            count_ += l.count_;
            sum_ += l.sum_;
            max_ = std::max(max_, l.max_);
        }
    }

    Histogram &
    operator=(const Histogram &o)
    {
        if (this != &o) {
            Histogram folded(o);
            buckets_ = std::move(folded.buckets_);
            width_ = folded.width_;
            count_ = folded.count_;
            sum_ = folded.sum_;
            max_ = folded.max_;
            lanes_.reset();
            laneCount_ = 0;
        }
        return *this;
    }

    Histogram(Histogram &&) = default;
    Histogram &operator=(Histogram &&) = default;

    void
    sample(std::uint64_t v)
    {
        if (lanes_) {
            lanes_[ctxDomain()].sample(v);
            return;
        }
        // Skip the integer division for sub-bucket-width values: latency
        // breakdowns sample several mostly-zero components per access,
        // which would otherwise put six divides on the L1-hit path.
        std::size_t idx = v < width_ ? 0 : v / width_;
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        ++count_;
        sum_ += static_cast<double>(v);
        if (v > max_)
            max_ = v;
    }

    /** Allocate @p n per-domain lane histograms (idempotent). Reads of
     *  count()/sum()/max()/buckets() require mergeLanes() first. */
    void
    enableLanes(unsigned n)
    {
        if (lanes_)
            return;
        laneCount_ = n;
        lanes_ = std::make_unique<Histogram[]>(n);
        for (unsigned i = 0; i < n; ++i)
            lanes_[i] = Histogram(numBuckets(), bucketWidth());
    }

    bool hasLanes() const { return static_cast<bool>(lanes_); }

    /** Mid-run per-domain partials (each domain reads only its own).
     *  Domain 0's partial carries the unlaned base fields, mirroring
     *  Counter::laneValue, so partials merge to the full totals. */
    std::uint64_t
    laneCount(unsigned d) const
    {
        return (d == 0 ? count_ : 0) + (lanes_ ? lanes_[d].count_ : 0);
    }

    double
    laneSum(unsigned d) const
    {
        return (d == 0 ? sum_ : 0.0) + (lanes_ ? lanes_[d].sum_ : 0.0);
    }

    std::uint64_t
    laneMax(unsigned d) const
    {
        const std::uint64_t base = d == 0 ? max_ : 0;
        return lanes_ ? std::max(base, lanes_[d].max_) : base;
    }

    /** Fold lane partials into the base fields (post-run, one thread). */
    void
    mergeLanes()
    {
        if (!lanes_)
            return;
        for (unsigned i = 0; i < laneCount_; ++i) {
            Histogram &l = lanes_[i];
            for (std::size_t b = 0; b < buckets_.size(); ++b)
                buckets_[b] += l.buckets_[b];
            count_ += l.count_;
            sum_ += l.sum_;
            max_ = std::max(max_, l.max_);
            l.reset();
        }
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    std::uint64_t bucketWidth() const { return width_; }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
        for (unsigned i = 0; i < laneCount_; ++i)
            lanes_[i].reset();
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t max_ = 0;
    std::unique_ptr<Histogram[]> lanes_; ///< per-domain partials
    unsigned laneCount_ = 0;
};

/** Unit/description metadata attached to a stat at registration. */
struct StatMeta
{
    std::string unit;
    std::string desc;
};

/**
 * Time series of selected counters, filled by a mon::TimeSeriesSink
 * during the run: samples[i][j] is the value of names[j] at simulated
 * tick ticks[i].
 */
struct StatsTimeSeries
{
    Tick interval = 0;
    std::vector<std::string> names;
    std::vector<Tick> ticks;
    std::vector<std::vector<double>> samples;

    bool enabled() const { return interval != 0; }
    std::size_t numSamples() const { return ticks.size(); }
};

/**
 * Registry of named statistics. Owns all stats; references returned by
 * counter()/histogram() stay valid for the registry's lifetime. Copyable
 * so a finished run's stats can be snapshotted into RunMetrics.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;

    /** Snapshot copy (RunMetrics): stat copies fold their lanes, and the
     *  snapshot starts unlaned — it is read, not accumulated into. The
     *  creation mutex itself is not copied. */
    StatsRegistry(const StatsRegistry &o)
        : counters_(o.counters_), histograms_(o.histograms_),
          meta_(o.meta_), timeseries_(o.timeseries_)
    {
    }

    StatsRegistry &
    operator=(const StatsRegistry &o)
    {
        if (this != &o) {
            counters_ = o.counters_;
            histograms_ = o.histograms_;
            meta_ = o.meta_;
            timeseries_ = o.timeseries_;
            laneCount_ = 1;
        }
        return *this;
    }

    /**
     * Decomposed-run mode: give every stat @p n per-domain lanes so
     * shard workers accumulate without sharing cache lines. Call before
     * components register their stats (System does, in its constructor);
     * stats created later are laned on creation. mergeLanes() folds the
     * partials back after the run.
     */
    void
    enableLanes(unsigned n)
    {
        if (n <= 1)
            return;
        laneCount_ = n;
        for (auto &kv : counters_)
            kv.second.enableLanes(n);
        for (auto &kv : histograms_)
            kv.second.enableLanes(n);
    }

    unsigned laneCount() const { return laneCount_; }

    /** Fold every stat's lane partials (post-run, single-threaded). */
    void
    mergeLanes()
    {
        for (auto &kv : counters_)
            kv.second.mergeLanes();
        for (auto &kv : histograms_)
            kv.second.mergeLanes();
    }

    Counter &
    counter(const std::string &name)
    {
        // Creation is the only cross-domain hazard: most stats are made
        // at construction, but phase-scoped counters materialize lazily
        // mid-run from whichever domain first touches the phase. Node
        // references stay valid forever, so only the insert needs the
        // lock — increments go through the lock-free lanes.
        std::lock_guard<std::mutex> g(createMu_);
        Counter &c = counters_[name];
        if (laneCount_ > 1)
            c.enableLanes(laneCount_);
        return c;
    }

    /** Create/find @p name, attaching unit/description metadata. */
    Counter &
    counter(const std::string &name, const std::string &unit,
            const std::string &desc)
    {
        setMeta(name, unit, desc);
        return counter(name);
    }

    /**
     * Stable-pointer form of counter(): hot paths cache the handle at
     * component construction instead of re-hashing the name on every
     * increment. std::map nodes never move, so the pointer stays valid
     * for the registry's lifetime regardless of later registrations.
     */
    Counter *
    handle(const std::string &name)
    {
        return &counter(name);
    }

    Counter *
    handle(const std::string &name, const std::string &unit,
           const std::string &desc)
    {
        return &counter(name, unit, desc);
    }

    /** Find @p name, or create it with the default geometry (16 x 8). */
    Histogram &
    histogram(const std::string &name)
    {
        std::lock_guard<std::mutex> g(createMu_);
        Histogram &h = histograms_[name];
        if (laneCount_ > 1)
            h.enableLanes(laneCount_);
        return h;
    }

    /**
     * Find-or-create with explicit geometry. Re-requesting an existing
     * histogram with different parameters is a hard error: the caller
     * would observe bucket semantics it did not ask for.
     */
    Histogram &
    histogram(const std::string &name, unsigned num_buckets,
              std::uint64_t bucket_width, const std::string &unit = "",
              const std::string &desc = "")
    {
        if (!unit.empty() || !desc.empty())
            setMeta(name, unit, desc);
        std::lock_guard<std::mutex> g(createMu_);
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_
                     .emplace(name, Histogram(num_buckets, bucket_width))
                     .first;
        } else {
            panic_if(it->second.numBuckets() != num_buckets ||
                         it->second.bucketWidth() != bucket_width,
                     "histogram '%s' re-requested with mismatched "
                     "parameters (%u x %llu, registered %u x %llu)",
                     name.c_str(), num_buckets,
                     (unsigned long long)bucket_width,
                     it->second.numBuckets(),
                     (unsigned long long)it->second.bucketWidth());
        }
        if (laneCount_ > 1)
            it->second.enableLanes(laneCount_);
        return it->second;
    }

    /** Stable-pointer form of histogram(); same contract as handle(). */
    Histogram *
    histogramHandle(const std::string &name, unsigned num_buckets,
                    std::uint64_t bucket_width, const std::string &unit = "",
                    const std::string &desc = "")
    {
        return &histogram(name, num_buckets, bucket_width, unit, desc);
    }

    /** Value of a counter; 0 if it was never created. */
    double
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second.value();
    }

    /** Sum of all counters whose name matches "prefix*suffix" pattern. */
    double sumMatching(const std::string &pattern) const;

    /** Names of all counters matching "prefix*suffix" (sorted). */
    std::vector<std::string>
    counterNamesMatching(const std::string &pattern) const;

    /** Names of all histograms matching "prefix*suffix" (sorted). */
    std::vector<std::string>
    histogramNamesMatching(const std::string &pattern) const;

    /** Metadata for @p name; nullptr if none was registered. */
    const StatMeta *
    meta(const std::string &name) const
    {
        auto it = meta_.find(name);
        return it == meta_.end() ? nullptr : &it->second;
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    StatsTimeSeries &timeSeries() { return timeseries_; }
    const StatsTimeSeries &timeSeries() const { return timeseries_; }

    /** Append one time-series sample: timeseries_.names read at @p tick. */
    void recordSample(Tick tick);

    void dump(std::ostream &os) const;

    /**
     * Dump every counter, histogram, and the time series (if sampled) as
     * one JSON object, with units/descriptions where registered.
     * @p header pairs are emitted first as top-level string fields
     * (e.g. {"git_rev", "abc1234"}); @p numericHeader pairs follow as
     * top-level number fields (e.g. {"host_seconds", 1.25}).
     */
    void dumpJson(std::ostream &os,
                  const std::vector<std::pair<std::string, std::string>>
                      &header = {},
                  const std::vector<std::pair<std::string, double>>
                      &numericHeader = {}) const;

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
        timeseries_.ticks.clear();
        timeseries_.samples.clear();
    }

  private:
    void
    setMeta(const std::string &name, const std::string &unit,
            const std::string &desc)
    {
        std::lock_guard<std::mutex> g(createMu_);
        StatMeta &m = meta_[name];
        if (m.unit.empty())
            m.unit = unit;
        if (m.desc.empty())
            m.desc = desc;
    }

    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, StatMeta> meta_;
    StatsTimeSeries timeseries_;
    unsigned laneCount_ = 1; ///< > 1 only in decomposed runs
    mutable std::mutex createMu_; ///< guards map inserts, not updates
};

namespace json
{

/** Write @p s as a JSON string literal (quoted, escaped). */
void writeString(std::ostream &os, const std::string &s);

/** Write @p v as a JSON number (integral values without a fraction). */
void writeNumber(std::ostream &os, double v);

} // namespace json

} // namespace tako

#endif // TAKO_SIM_STATS_HH
