/**
 * @file
 * Lightweight statistics registry.
 *
 * Components create named counters/histograms under a hierarchical dotted
 * name ("tile3.l2.misses"). Benches read them back by name or dump all.
 */

#ifndef TAKO_SIM_STATS_HH
#define TAKO_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace tako
{

/** A scalar, accumulating statistic. */
class Counter
{
  public:
    Counter &operator+=(double v) { value_ += v; return *this; }
    Counter &operator++() { value_ += 1; return *this; }
    void operator++(int) { value_ += 1; }
    double value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** A histogram over fixed-width buckets plus mean tracking. */
class Histogram
{
  public:
    Histogram() : Histogram(16, 8) {}

    /** @p num_buckets buckets of width @p bucket_width; overflow last. */
    Histogram(unsigned num_buckets, std::uint64_t bucket_width)
        : buckets_(num_buckets, 0), width_(bucket_width)
    {
    }

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = v / width_;
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        ++count_;
        sum_ += static_cast<double>(v);
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t max() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t bucketWidth() const { return width_; }

    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
        sum_ = 0;
        max_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t width_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Registry of named statistics. Owns all stats; references returned by
 * counter()/histogram() stay valid for the registry's lifetime.
 */
class StatsRegistry
{
  public:
    Counter &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    Histogram &
    histogram(const std::string &name, unsigned num_buckets = 16,
              std::uint64_t bucket_width = 8)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            it = histograms_
                     .emplace(name, Histogram(num_buckets, bucket_width))
                     .first;
        }
        return it->second;
    }

    /** Value of a counter; 0 if it was never created. */
    double
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0.0 : it->second.value();
    }

    /** Sum of all counters whose name matches "prefix*suffix" pattern. */
    double sumMatching(const std::string &pattern) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    void dump(std::ostream &os) const;

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace tako

#endif // TAKO_SIM_STATS_HH
