/**
 * @file
 * C++20 coroutine plumbing for simulated threads.
 *
 * Guest programs (software threads on simulated cores) and täkō callbacks
 * (threads on near-cache engines) are written as coroutines returning
 * Task<> or Task<T>. Tasks are lazy: they run only when awaited or
 * spawned. Awaitables suspend the coroutine and arrange for an EventQueue
 * event to resume it at the right simulated time.
 *
 * Rule: completion callbacks must be invoked from the event queue, never
 * synchronously from within the issuing call. Every hardware component in
 * tako-sim has nonzero (or explicitly zero-delta scheduled) latency, so
 * this falls out naturally.
 */

#ifndef TAKO_SIM_TASK_HH
#define TAKO_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <functional>
#include <utility>

#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace tako
{

template <typename T>
class Task;

namespace detail
{

struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    // Coroutine frames come from the size-class arena: the compiler
    // routes frame allocation through the promise's operator new with
    // the full frame size.
    static void *
    operator new(std::size_t bytes)
    {
        return FrameArena::allocate(bytes);
    }

    static void
    operator delete(void *p, std::size_t bytes) noexcept
    {
        FrameArena::deallocate(p, bytes);
    }

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            // Symmetric transfer to whoever awaited us.
            if (h.promise().continuation)
                return h.promise().continuation;
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase
{
    T value{};

    Task<T> get_return_object();
    void return_value(T v) { value = std::move(v); }
};

template <>
struct Promise<void> : PromiseBase
{
    Task<void> get_return_object();
    void return_void() {}
};

} // namespace detail

/**
 * A lazily-started coroutine yielding a T (or nothing), awaitable from
 * other coroutines. Modeled on cppcoro::task.
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task &
    operator=(Task &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }
    bool done() const { return !handle_ || handle_.done(); }

    /** Awaiting a Task starts it and suspends the awaiter until done. */
    auto
    operator co_await() && noexcept
    {
        struct Awaiter
        {
            Handle h;

            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            T
            await_resume()
            {
                if (h && h.promise().exception)
                    std::rethrow_exception(h.promise().exception);
                if constexpr (!std::is_void_v<T>)
                    return std::move(h.promise().value);
            }
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

namespace detail
{

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

/**
 * Fire-and-forget top-level coroutine; self-destroying. Used only by
 * spawn() below.
 */
struct DetachedTask
{
    struct promise_type
    {
        static void *
        operator new(std::size_t bytes)
        {
            return FrameArena::allocate(bytes);
        }

        static void
        operator delete(void *p, std::size_t bytes) noexcept
        {
            FrameArena::deallocate(p, bytes);
        }

        DetachedTask get_return_object() { return {}; }
        std::suspend_never initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            panic("unhandled exception escaped a detached task");
        }
    };
};

/**
 * Start @p task detached; call @p on_done (if set) when it completes.
 * The task runs its first step immediately.
 */
inline void
spawn(Task<> task, std::function<void()> on_done = {})
{
    [](Task<> t, std::function<void()> done) -> DetachedTask {
        co_await std::move(t);
        if (done)
            done();
    }(std::move(task), std::move(on_done));
}

/**
 * Awaitable that delays the coroutine by @p delta ticks. The resumption
 * is scheduled on the execution context's queue (homeQueue): a memory
 * transaction that has walked to a remote tile keeps running there, on
 * that domain's queue, even though the awaiter was built with the
 * component's construction-time queue reference.
 */
struct Delay
{
    EventQueue &eq;
    Tick delta;
    EventPriority prio = EventPriority::Default;

    bool await_ready() const noexcept { return delta == 0; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        homeQueue(eq).schedule(delta, [h]() { h.resume(); }, prio);
    }

    void await_resume() const noexcept {}
};

/**
 * One-shot event a coroutine can await; some component later calls
 * complete(value), which schedules the resumption via the event queue
 * (zero-delta by default). Single waiter.
 */
template <typename T>
class Completion
{
  public:
    explicit Completion(EventQueue &eq) : eq_(eq) {}

    Completion(const Completion &) = delete;
    Completion &operator=(const Completion &) = delete;

    bool completed() const { return completed_; }

    void
    complete(T value, Tick delta = 0)
    {
        panic_if(completed_, "Completion completed twice");
        completed_ = true;
        value_ = std::move(value);
        if (waiter_) {
            auto w = waiter_;
            homeQueue(eq_).schedule(delta, [w]() { w.resume(); });
        } else {
            completionDelta_ = delta;
        }
    }

    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            Completion &c;

            bool await_ready() const noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                panic_if(static_cast<bool>(c.waiter_),
                         "Completion awaited twice");
                c.waiter_ = h;
                if (c.completed_) {
                    homeQueue(c.eq_).schedule(c.completionDelta_,
                                              [h]() { h.resume(); });
                }
            }

            T await_resume() { return std::move(c.value_); }
        };
        return Awaiter{*this};
    }

  private:
    EventQueue &eq_;
    std::coroutine_handle<> waiter_;
    bool completed_ = false;
    Tick completionDelta_ = 0;
    T value_{};
};

/**
 * Join counter: a coroutine awaits wait() until all added work items have
 * called done(). Work is added with add() before the await. Like
 * Semaphore below, the counter mutates on whichever queue calls done(),
 * so adders, finishers and the waiter must share one domain.
 */
// takolint: domain-local
class Join
{
  public:
    explicit Join(EventQueue &eq) : eq_(eq) {}

    Join(const Join &) = delete;
    Join &operator=(const Join &) = delete;

    void add(unsigned n = 1) { outstanding_ += n; }

    void
    done()
    {
        panic_if(outstanding_ == 0, "Join::done() without matching add()");
        --outstanding_;
        if (outstanding_ == 0 && waiter_) {
            auto w = std::exchange(waiter_, {});
            homeQueue(eq_).schedule(0, [w]() { w.resume(); });
        }
    }

    unsigned outstanding() const { return outstanding_; }

    /**
     * Completion callable for spawn()/triggerMiss-style APIs. Captures
     * `this` by value, which is safe by construction: the coroutine that
     * owns the Join suspends on wait() and cannot destroy it until every
     * outstanding completion has run (takolint L1-clean, unlike an
     * ad-hoc `[&join]` capture).
     */
    auto completion()
    {
        Join *self = this;
        return [self]() { self->done(); };
    }

    auto
    wait()
    {
        struct Awaiter
        {
            Join &join;

            bool await_ready() const noexcept
            {
                return join.outstanding_ == 0;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                panic_if(static_cast<bool>(join.waiter_),
                         "Join awaited twice");
                join.waiter_ = h;
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    EventQueue &eq_;
    std::coroutine_handle<> waiter_;
    unsigned outstanding_ = 0;
};

/**
 * Counting semaphore with FIFO coroutine waiters; completions are
 * scheduled through the event queue for determinism.
 *
 * Domain-local only: release() resumes the oldest waiter on the
 * *releaser's* queue, so under a decomposed run (--shards > 1) the
 * waiter's continuation would execute in the releaser's domain and any
 * work it then does at its own tile trips the cross-domain lookahead
 * panic. Every model use (engine ports, MSHR/WB entries, core windows)
 * keeps acquirers and releasers on one tile; cross-tile guest
 * synchronization wants workloads' SimBarrier, which routes wakeups
 * back to each waiter's tile through the domain router.
 */
// takolint: domain-local
class Semaphore
{
  public:
    Semaphore(EventQueue &eq, unsigned count) : eq_(eq), count_(count) {}

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore &sem;

            bool
            await_ready() const noexcept
            {
                if (sem.count_ > 0) {
                    --sem.count_;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters_.push_back(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

    void
    release()
    {
        if (!waiters_.empty()) {
            // Hand the slot directly to the oldest waiter.
            auto h = waiters_.front();
            waiters_.erase(waiters_.begin());
            homeQueue(eq_).schedule(0, [h]() { h.resume(); });
        } else {
            ++count_;
        }
    }

    unsigned available() const { return count_; }

  private:
    EventQueue &eq_;
    unsigned count_;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace tako

#endif // TAKO_SIM_TASK_HH
