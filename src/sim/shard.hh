/**
 * @file
 * Conservative sharded execution for the deterministic event kernel.
 *
 * A ShardPlan partitions the tile mesh into column-contiguous shards
 * and derives the synchronization quantum from the static minimum
 * cross-shard NoC latency under XY routing: any message that leaves a
 * shard crosses at least one boundary link, which costs at least
 * routerDelay + linkDelay ticks. Every shard therefore simulates
 * windows of `quantum` ticks in lockstep — within a window no shard can
 * observe an event another shard produced in the same window, so each
 * shard's calendar queue runs free of locks.
 *
 * Cross-shard events travel through per-shard-pair SPSC mailboxes and
 * are drained only at quantum barriers, sorted into the receiving
 * queue by (tick, priority, source shard, source sequence). Because the
 * drained set and its insertion order are functions of simulation state
 * alone — never of host-thread timing — a sharded run reproduces the
 * monolithic (tick, priority, seq) total order bit for bit (proof
 * sketch in DESIGN.md §4).
 *
 * The same lane machinery drives deterministic ensembles: runLanes()
 * executes independent jobs (e.g. seed-offset replicas) across a fixed
 * worker pool with a lane assignment that depends only on job index,
 * so merged results are identical at any lane count.
 */

#ifndef TAKO_SIM_SHARD_HH
#define TAKO_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"

namespace tako
{

/**
 * Static tile -> shard partition plus the conservative lookahead bound.
 * Columns are assigned contiguously so every boundary is a vertical cut
 * and the quantum derives from one E/W link crossing.
 */
struct ShardPlan
{
    unsigned shards = 1; ///< effective shard count (<= dimX)
    unsigned dimX = 1;
    unsigned dimY = 1;
    /** Conservative sync quantum: minimum ticks any cross-shard message
     *  spends in flight (routerDelay + linkDelay for one boundary
     *  link). Never zero. */
    Tick quantum = 1;
    std::vector<unsigned> columnShard; ///< dimX entries, non-decreasing
    unsigned boundaryLinks = 0; ///< directed E/W links crossing a cut

    /**
     * Partition a dimX x dimY mesh into @p shards column bands. The
     * request is clamped to [1, dimX]; a mesh cannot split finer than
     * its columns.
     */
    static ShardPlan build(unsigned dimX, unsigned dimY, Tick routerDelay,
                           Tick linkDelay, unsigned shards);

    unsigned
    shardOf(unsigned tile) const
    {
        return columnShard[tile % dimX];
    }
};

/**
 * Lock-free single-producer/single-consumer ring. One instance per
 * directed shard pair: only the source shard's worker pushes, only the
 * destination shard's worker pops, and pops happen exclusively at
 * quantum barriers (after every producer for the window has arrived),
 * so capacity bounds one window's traffic, not a whole run's.
 */
template <typename T>
class SpscMailbox
{
  public:
    explicit SpscMailbox(std::size_t capacity = 4096)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    /** Producer side. False = full (caller decides how to fail). */
    bool
    tryPush(T v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) > mask_)
            return false;
        ring_[t & mask_] = std::move(v);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False = empty. */
    bool
    tryPop(T &out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) == h)
            return false;
        out = std::move(ring_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    bool
    empty() const
    {
        return tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    std::vector<T> ring_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0}; ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< producer cursor
};

/** One cross-shard event in flight. */
struct ShardEvent
{
    Tick when = 0;
    EventPriority priority = EventPriority::Default;
    /**
     * Tie-break key. Keyed sends carry the sender's partition-invariant
     * (stream, per-stream seq) pack; legacy sends pack (source shard,
     * send order) in the same layout, which reproduces the historical
     * (src, srcSeq) drain order.
     */
    std::uint64_t key = 0;
    /** Stream published in ExecCtx while the delivered event runs. */
    std::uint32_t execStream = 0;
    std::function<void()> fn;
};

/**
 * Runs N event-queue domains in lockstep quantum windows on a fixed
 * worker pool, draining cross-shard mailboxes only at barriers. The
 * result is bit-identical at any thread count (1..N): thread timing can
 * change when host work happens, never which events run in what order.
 *
 * Domains are borrowed, not owned; each must only ever be touched by
 * executor callbacks (or before run() / after it returns).
 */
class ShardedExecutor
{
  public:
    /**
     * @p domains one calendar queue per shard; @p quantum the plan's
     * conservative lookahead (>= 1); @p threads worker count, clamped
     * to [1, domains.size()], 0 = one per domain.
     */
    ShardedExecutor(std::vector<EventQueue *> domains, Tick quantum,
                    unsigned threads = 0);

    /**
     * Post @p fn to shard @p dst at absolute tick @p when. Must be
     * called from an event executing on shard @p src, and @p when must
     * be at least the sending event's time plus the quantum — the
     * receiver panics on anything earlier (lookahead violation).
     * src == dst degenerates to a plain scheduleAbs.
     */
    void send(unsigned src, unsigned dst, Tick when, EventPriority prio,
              std::function<void()> fn);

    /**
     * Like send(), but with an explicit partition-invariant tie-break
     * key and execution stream (see StreamKeySource). Used by the
     * domain router for decomposed single-run simulation: the key was
     * drawn from the sending event's stream counter, so the receiver
     * can merge arrivals into the exact monolithic total order.
     */
    void sendKeyed(unsigned src, unsigned dst, Tick when,
                   EventPriority prio, std::uint64_t key,
                   std::uint32_t execStream, std::function<void()> fn);

    /** Run every domain to quiescence (all queues and mailboxes empty).
     *  Blocks the calling thread; workers join before it returns. */
    void run();

    /** Quantum rounds completed (diagnostics; valid after run()). */
    std::uint64_t rounds() const { return rounds_; }
    /** Cross-shard events delivered through mailboxes. */
    std::uint64_t
    crossShardEvents() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }

    /**
     * Per-domain execution profile, valid after run(). Every field is a
     * pure function of simulation state (which events ran in which
     * lockstep window), so the whole struct is bit-identical at any
     * worker thread count — it feeds the deterministic shard.* stat
     * namespace. Each domain's entry is written only by the one worker
     * that owns the domain (s % threads == worker); the padding keeps
     * the owners off each other's cache lines.
     */
    struct alignas(64) DomainProfile
    {
        std::uint64_t executed = 0;  ///< events fired across all rounds
        std::uint64_t maxRoundEvents = 0; ///< busiest single round
        std::uint64_t idleRounds = 0; ///< lockstep rounds with no events
        std::uint64_t received = 0;   ///< cross-shard events delivered in
        std::uint64_t maxInboxDepth = 0; ///< deepest single-mailbox drain
    };

    const std::vector<DomainProfile> &
    domainProfiles() const
    {
        return profiles_;
    }

    /** Events sent cross-shard by @p src (its mailbox sequence count). */
    std::uint64_t
    eventsSent(unsigned src) const
    {
        return sendSeq_[src].value;
    }

    /** Rounds where a single busy domain ran free (skip-ahead). */
    std::uint64_t soloRounds() const { return soloRounds_; }

    /**
     * Host seconds workers spent parked at quantum barriers, summed over
     * workers. Host-timing-dependent by nature: report it only under the
     * determinism-exempt host.* namespace.
     */
    double barrierWaitSeconds() const;

  private:
    struct alignas(64) PaddedCounter
    {
        std::uint64_t value = 0;
    };

    struct alignas(64) PaddedSeconds
    {
        double value = 0;
    };

    /** Snapshot of the next round, taken under the barrier mutex. */
    struct RoundState
    {
        Tick start;
        unsigned solo;
        bool done;
    };

    static constexpr unsigned kNoSolo = ~0u;

    void workerLoop(unsigned worker);
    void drainInbox(unsigned shard, Tick windowStart);
    void runSolo(unsigned shard);
    void advanceRound();
    RoundState barrierSync(unsigned worker, bool completion);

    std::vector<EventQueue *> domains_;
    Tick quantum_;
    unsigned threads_;
    /** Barrier spin iterations before falling back to yield(); near
     *  zero when workers outnumber hardware threads (see ctor). */
    unsigned spinLimit_ = 1u << 14;
    /** mail_[src * N + dst]; only (src worker, dst worker) touch it. */
    std::vector<std::unique_ptr<SpscMailbox<ShardEvent>>> mail_;
    std::vector<PaddedCounter> sendSeq_; ///< per-source send counters

    // Centralized sense-reversing spin barrier. Rounds are short (one
    // quantum is a handful of events per domain), so parking on a
    // condvar costs more than the window itself; workers spin on the
    // generation word and only fall back to yield() after a threshold.
    // The plain round fields are written only by the last arriver,
    // between its arrival (acq_rel fetch_add) and its generation bump
    // (release store); every other worker reads them only after
    // observing the bump (acquire load) — a proper release/acquire pair,
    // no mutex needed.
    alignas(64) std::atomic<std::uint64_t> generation_{0};
    alignas(64) std::atomic<unsigned> arrived_{0};
    Tick windowStart_ = 0;
    unsigned soloDomain_ = kNoSolo;
    bool done_ = false;

    std::uint64_t rounds_ = 0;
    std::uint64_t soloRounds_ = 0;
    std::atomic<std::uint64_t> delivered_{0};

    std::vector<DomainProfile> profiles_;    ///< one per domain
    std::vector<PaddedSeconds> barrierWait_; ///< one per worker (host.*)
};

/**
 * Execute independent @p jobs across @p lanes worker threads: lane w
 * runs jobs w, w + lanes, ... in index order. The job -> lane map is a
 * pure function of the indices, so any caller that merges results in
 * job order gets identical output at every lane count. Used for
 * seed-offset replica ensembles (takosim --replicate).
 */
void runLanes(unsigned lanes,
              const std::vector<std::function<void()>> &jobs);

} // namespace tako

#endif // TAKO_SIM_SHARD_HH
