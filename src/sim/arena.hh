/**
 * @file
 * Size-class arena for coroutine frames.
 *
 * Every guest thread, täkō callback, and helper coroutine allocates its
 * frame through the promise's operator new (see task.hh). Frame sizes are
 * decided by the compiler but cluster into a handful of values per build,
 * so a size-class free list turns the malloc/free per coroutine into a
 * pointer pop/push after warm-up.
 *
 * Lifetime rules: the arena is process-global and never returns slabs to
 * the OS. Freed frames go back on their class's free list and are handed
 * out again in LIFO order, which keeps the hottest frame memory in cache.
 * tako-sim simulations are single-threaded (takobench parallelism is
 * fork/exec), so there is no locking. Frames larger than kMaxBlock fall
 * through to ::operator new and are counted in Stats::oversize.
 */

#ifndef TAKO_SIM_ARENA_HH
#define TAKO_SIM_ARENA_HH

#include <cstddef>
#include <cstdint>

namespace tako
{

class FrameArena
{
  public:
    /// Size-class granule; also the minimum block size.
    static constexpr std::size_t kGranule = 64;
    /// Largest pooled frame; bigger requests hit ::operator new.
    static constexpr std::size_t kMaxBlock = 2048;
    static constexpr std::size_t kNumClasses = kMaxBlock / kGranule;

    struct Stats
    {
        std::uint64_t allocs = 0;    ///< pooled allocations served
        std::uint64_t reuses = 0;    ///< served from a free list
        std::uint64_t oversize = 0;  ///< fell through to ::operator new
        std::uint64_t live = 0;      ///< pooled blocks currently out
        std::uint64_t slabBytes = 0; ///< bytes held in slabs
    };

    static void *allocate(std::size_t bytes);
    static void deallocate(void *p, std::size_t bytes) noexcept;

    static const Stats &stats();

  private:
    FrameArena() = delete;
};

} // namespace tako

#endif // TAKO_SIM_ARENA_HH
