#include "sim/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tako::trace
{

namespace
{

const char *
name(Flag f)
{
    switch (f) {
      case Flag::Cache:
        return "cache";
      case Flag::Coherence:
        return "coherence";
      case Flag::Engine:
        return "engine";
      case Flag::Morph:
        return "morph";
      case Flag::Noc:
        return "noc";
      case Flag::Dram:
        return "dram";
      case Flag::Rmo:
        return "rmo";
    }
    return "?";
}

std::uint32_t
parseMask()
{
    const char *env = std::getenv("TAKO_TRACE");
    if (!env || !*env)
        return 0;
    std::uint32_t mask = 0;
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "all") {
            mask = ~0u;
        } else {
            bool known = false;
            for (std::uint32_t bit = 1; bit <= (1u << 6); bit <<= 1) {
                if (tok == name(static_cast<Flag>(bit))) {
                    mask |= bit;
                    known = true;
                }
            }
            if (!known && !tok.empty()) {
                std::fprintf(stderr,
                             "warn: unknown TAKO_TRACE category '%s'\n",
                             tok.c_str());
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return mask;
}

} // namespace

std::uint32_t
enabledMask()
{
    static const std::uint32_t mask = parseMask();
    return mask;
}

void
emit(Flag f, Tick now, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    std::fprintf(stderr, "%12llu: %-9s: %s\n", (unsigned long long)now,
                 name(f), buf);
}

} // namespace tako::trace
