#include "sim/trace.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tako::trace
{

namespace
{

const char *
name(Flag f)
{
    switch (f) {
      case Flag::Cache:
        return "cache";
      case Flag::Coherence:
        return "coherence";
      case Flag::Engine:
        return "engine";
      case Flag::Morph:
        return "morph";
      case Flag::Noc:
        return "noc";
      case Flag::Dram:
        return "dram";
      case Flag::Rmo:
        return "rmo";
      case Flag::Mem:
        return "mem";
      default:
        // Flag::NumFlags is a count, not a bit, so it cannot appear as a
        // case label (its value aliases a real flag's mask).
        break;
    }
    return "?";
}

} // namespace

std::uint32_t
parseSpec(const char *spec_cstr)
{
    if (!spec_cstr || !*spec_cstr)
        return 0;
    std::uint32_t mask = 0;
    std::string spec(spec_cstr);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::string tok = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "all") {
            mask = allFlagsMask();
        } else {
            bool known = false;
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(Flag::NumFlags); ++i) {
                const std::uint32_t bit = 1u << i;
                if (tok == name(static_cast<Flag>(bit))) {
                    mask |= bit;
                    known = true;
                }
            }
            if (!known && !tok.empty()) {
                std::fprintf(stderr,
                             "warn: unknown TAKO_TRACE category '%s'\n",
                             tok.c_str());
            }
        }
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return mask;
}

std::uint32_t
enabledMask()
{
    // takolint: ok(D2, one-time TAKO_TRACE config read at startup)
    static const std::uint32_t mask = parseSpec(std::getenv("TAKO_TRACE"));
    return mask;
}

void
emit(Flag f, Tick now, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    std::fprintf(stderr, "%12llu: %-9s: %s\n", (unsigned long long)now,
                 name(f), buf);
}

} // namespace tako::trace
