/**
 * @file
 * Dynamic-energy accounting.
 *
 * The paper (Sec. 7) reports *dynamic* execution energy with per-event
 * energy parameters drawn from the literature it cites ([114, 133]). We
 * follow the same approach: each countable hardware event carries a fixed
 * energy, and benches report energy *relative to a baseline*, which is what
 * Figs. 6/13/16/19 plot. Absolute joules are not meaningful here.
 *
 * Default values are in picojoules, roughly consistent with published
 * numbers for a ~22nm-class multicore: an OOO core spends tens of pJ per
 * instruction (fetch/decode/rename/RF dominate), SRAM access energy grows
 * with array size, DRAM accesses cost tens of nJ per line, and dataflow
 * PEs avoid instruction-supply overheads entirely.
 */

#ifndef TAKO_ENERGY_ENERGY_HH
#define TAKO_ENERGY_ENERGY_HH

#include <cstdint>

#include "sim/stats.hh"

namespace tako
{

/** Per-event dynamic energies, in pJ. */
struct EnergyParams
{
    double coreInstr = 90.0;      ///< OOO core, per committed instruction.
    double engineInstr = 4.0;     ///< Dataflow PE op (no fetch/decode).
    double inorderEngineInstr = 18.0; ///< In-order engine, per instruction.
    double l1Access = 15.0;       ///< 32KB L1 read/write.
    double engineL1Access = 8.0;  ///< 8KB engine L1d.
    double l2Access = 40.0;       ///< 128KB L2.
    double l3Access = 120.0;      ///< 512KB L3 bank.
    double dramAccess = 15000.0;  ///< 64B DRAM line transfer.
    double nocFlitHop = 6.0;      ///< One flit traversing one hop.
    double tlbAccess = 2.0;       ///< Engine TLB/rTLB lookup.
};

/**
 * Accumulates dynamic energy into a StatsRegistry, broken down by
 * component, so benches can report totals and breakdowns.
 */
class EnergyModel
{
  public:
    EnergyModel(StatsRegistry &stats, EnergyParams params = {})
        : params_(params),
          core_(stats.counter("energy.core")),
          engine_(stats.counter("energy.engine")),
          l1_(stats.counter("energy.l1")),
          l2_(stats.counter("energy.l2")),
          l3_(stats.counter("energy.l3")),
          dram_(stats.counter("energy.dram")),
          noc_(stats.counter("energy.noc")),
          total_(stats.counter("energy.total"))
    {
    }

    const EnergyParams &params() const { return params_; }

    void
    coreInstrs(std::uint64_t n)
    {
        add(core_, params_.coreInstr * static_cast<double>(n));
    }

    void
    engineInstrs(std::uint64_t n, bool inorder = false)
    {
        add(engine_,
            (inorder ? params_.inorderEngineInstr : params_.engineInstr) *
                static_cast<double>(n));
    }

    void l1Access() { add(l1_, params_.l1Access); }
    void engineL1Access() { add(l1_, params_.engineL1Access); }
    void l2Access() { add(l2_, params_.l2Access); }
    void l3Access() { add(l3_, params_.l3Access); }
    void dramAccess() { add(dram_, params_.dramAccess); }

    void
    nocFlitHops(std::uint64_t n)
    {
        add(noc_, params_.nocFlitHop * static_cast<double>(n));
    }

    void tlbAccess() { add(engine_, params_.tlbAccess); }

    /** Total dynamic energy, pJ. */
    double total() const { return total_.value(); }

  private:
    void
    add(Counter &c, double pj)
    {
        c += pj;
        total_ += pj;
    }

    EnergyParams params_;
    Counter &core_;
    Counter &engine_;
    Counter &l1_;
    Counter &l2_;
    Counter &l3_;
    Counter &dram_;
    Counter &noc_;
    Counter &total_;
};

} // namespace tako

#endif // TAKO_ENERGY_ENERGY_HH
