#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/domains.hh"

namespace tako
{

namespace
{

enum Direction : int
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
};

} // namespace

Mesh::Mesh(const MeshParams &params, StatsRegistry &stats,
           EnergyModel &energy)
    : params_(params),
      energy_(energy),
      messages_(stats.handle("noc.messages")),
      localMessages_(stats.handle("noc.localMessages")),
      flitHopsStat_(stats.handle("noc.flitHops")),
      linkFree_(static_cast<std::size_t>(params.dimX) * params.dimY * 4, 0)
{
}

unsigned
Mesh::hops(int src, int dst) const
{
    const int sx = src % static_cast<int>(params_.dimX);
    const int sy = src / static_cast<int>(params_.dimX);
    const int dx = dst % static_cast<int>(params_.dimX);
    const int dy = dst / static_cast<int>(params_.dimX);
    return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
}

Tick
Mesh::traverse(Tick now, int src, int dst, unsigned bytes)
{
    ++*messages_;
    const unsigned flits =
        std::max<unsigned>(1, static_cast<unsigned>(
                                  divCeil(bytes, params_.flitBytes)));

    if (src == dst) {
        // Local delivery still crosses the tile router once, but books
        // no flit-hops and touches no link — count it separately so the
        // per-link totals reconcile with noc.messages.
        ++*localMessages_;
        return params_.routerDelay;
    }

    int x = src % static_cast<int>(params_.dimX);
    int y = src / static_cast<int>(params_.dimX);
    const int dx = dst % static_cast<int>(params_.dimX);
    const int dy = dst / static_cast<int>(params_.dimX);

    Tick head = now;
    unsigned hop_count = 0;
    while (x != dx || y != dy) {
        int dir;
        int nx = x, ny = y;
        if (x != dx) {
            dir = (dx > x) ? East : West;
            nx += (dx > x) ? 1 : -1;
        } else {
            dir = (dy > y) ? South : North;
            ny += (dy > y) ? 1 : -1;
        }
        const int tile = y * static_cast<int>(params_.dimX) + x;
        const std::size_t li = linkIndex(tile, dir);
        Tick &free = linkFree_[li];
        const Tick start = std::max(head, free);
        free = start + flits;
        if (!linkBusy_.empty()) {
            linkBusy_[li] += flits;
            ++linkMsgs_[li];
        }
        head = start + params_.routerDelay + params_.linkDelay;
        ++hop_count;
        x = nx;
        y = ny;
    }
    // Destination router plus tail-flit serialization.
    head += params_.routerDelay + (flits - 1);

    flitHops_ += std::uint64_t(flits) * hop_count;
    *flitHopsStat_ += static_cast<double>(std::uint64_t(flits) * hop_count);
    energy_.nocFlitHops(std::uint64_t(flits) * hop_count);
    return head - now;
}

Task<>
Mesh::walk(Domains &dom, int src, int dst, unsigned bytes)
{
    ++*messages_;
    const unsigned flits =
        std::max<unsigned>(1, static_cast<unsigned>(
                                  divCeil(bytes, params_.flitBytes)));

    if (src == dst) {
        ++*localMessages_;
        co_await dom.hopTo(src, params_.routerDelay);
        co_return;
    }

    int x = src % static_cast<int>(params_.dimX);
    int y = src / static_cast<int>(params_.dimX);
    const int dx = dst % static_cast<int>(params_.dimX);
    const int dy = dst / static_cast<int>(params_.dimX);
    unsigned hop_count = 0;

    // X leg: every hop crosses a column, so each reservation happens in
    // an event at the link's source tile (its owning domain) at the head
    // flit's arrival tick, and the next arrival is routerDelay+linkDelay
    // (= one quantum) ahead — exactly the plan's lookahead floor.
    while (x != dx) {
        const int dir = (dx > x) ? East : West;
        const int tile = y * static_cast<int>(params_.dimX) + x;
        const std::size_t li = linkIndex(tile, dir);
        Tick &free = linkFree_[li];
        const Tick here = detail::execCtx.queue->now();
        const Tick start = std::max(here, free);
        free = start + flits;
        if (!linkBusy_.empty()) {
            linkBusy_[li] += flits;
            ++linkMsgs_[li];
        }
        ++hop_count;
        x += (dx > x) ? 1 : -1;
        const int next = y * static_cast<int>(params_.dimX) + x;
        co_await dom.hopToAbs(next,
                              start + params_.routerDelay +
                                  params_.linkDelay);
    }

    // Y leg: the whole column belongs to the current domain, so the
    // remaining links are reserved here and now, in one event, with the
    // same per-hop recurrence traverse() uses.
    Tick head = detail::execCtx.queue->now();
    while (y != dy) {
        const int dir = (dy > y) ? South : North;
        const int tile = y * static_cast<int>(params_.dimX) + x;
        const std::size_t li = linkIndex(tile, dir);
        Tick &free = linkFree_[li];
        const Tick start = std::max(head, free);
        free = start + flits;
        if (!linkBusy_.empty()) {
            linkBusy_[li] += flits;
            ++linkMsgs_[li];
        }
        head = start + params_.routerDelay + params_.linkDelay;
        ++hop_count;
        y += (dy > y) ? 1 : -1;
    }
    // Destination router plus tail-flit serialization.
    head += params_.routerDelay + (flits - 1);

    // The plain aggregate backs the flitHops() accessor (profiler
    // cross-checks); with several domains it would be a data race, and
    // the laned noc.flitHops stat already carries the total.
    if (dom.domainCount() == 1)
        flitHops_ += std::uint64_t(flits) * hop_count;
    *flitHopsStat_ += static_cast<double>(std::uint64_t(flits) * hop_count);
    energy_.nocFlitHops(std::uint64_t(flits) * hop_count);
    co_await dom.hopToAbs(dst, head);
}

void
Mesh::enableLinkProfiling()
{
    linkBusy_.assign(linkFree_.size(), 0);
    linkMsgs_.assign(linkFree_.size(), 0);
}

void
Mesh::reset()
{
    std::fill(linkFree_.begin(), linkFree_.end(), 0);
    flitHops_ = 0;
    std::fill(linkBusy_.begin(), linkBusy_.end(), 0);
    std::fill(linkMsgs_.begin(), linkMsgs_.end(), 0);
}

} // namespace tako
