#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

namespace tako
{

namespace
{

enum Direction : int
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
};

} // namespace

Mesh::Mesh(const MeshParams &params, StatsRegistry &stats,
           EnergyModel &energy)
    : params_(params),
      energy_(energy),
      messages_(stats.handle("noc.messages")),
      localMessages_(stats.handle("noc.localMessages")),
      flitHopsStat_(stats.handle("noc.flitHops")),
      linkFree_(static_cast<std::size_t>(params.dimX) * params.dimY * 4, 0)
{
}

unsigned
Mesh::hops(int src, int dst) const
{
    const int sx = src % static_cast<int>(params_.dimX);
    const int sy = src / static_cast<int>(params_.dimX);
    const int dx = dst % static_cast<int>(params_.dimX);
    const int dy = dst / static_cast<int>(params_.dimX);
    return static_cast<unsigned>(std::abs(sx - dx) + std::abs(sy - dy));
}

Tick
Mesh::traverse(Tick now, int src, int dst, unsigned bytes)
{
    ++*messages_;
    const unsigned flits =
        std::max<unsigned>(1, static_cast<unsigned>(
                                  divCeil(bytes, params_.flitBytes)));

    if (src == dst) {
        // Local delivery still crosses the tile router once, but books
        // no flit-hops and touches no link — count it separately so the
        // per-link totals reconcile with noc.messages.
        ++*localMessages_;
        return params_.routerDelay;
    }

    int x = src % static_cast<int>(params_.dimX);
    int y = src / static_cast<int>(params_.dimX);
    const int dx = dst % static_cast<int>(params_.dimX);
    const int dy = dst / static_cast<int>(params_.dimX);

    Tick head = now;
    unsigned hop_count = 0;
    while (x != dx || y != dy) {
        int dir;
        int nx = x, ny = y;
        if (x != dx) {
            dir = (dx > x) ? East : West;
            nx += (dx > x) ? 1 : -1;
        } else {
            dir = (dy > y) ? South : North;
            ny += (dy > y) ? 1 : -1;
        }
        const int tile = y * static_cast<int>(params_.dimX) + x;
        const std::size_t li = linkIndex(tile, dir);
        Tick &free = linkFree_[li];
        const Tick start = std::max(head, free);
        free = start + flits;
        if (!linkBusy_.empty()) {
            linkBusy_[li] += flits;
            ++linkMsgs_[li];
        }
        head = start + params_.routerDelay + params_.linkDelay;
        ++hop_count;
        x = nx;
        y = ny;
    }
    // Destination router plus tail-flit serialization.
    head += params_.routerDelay + (flits - 1);

    flitHops_ += std::uint64_t(flits) * hop_count;
    *flitHopsStat_ += static_cast<double>(std::uint64_t(flits) * hop_count);
    energy_.nocFlitHops(std::uint64_t(flits) * hop_count);
    return head - now;
}

void
Mesh::enableLinkProfiling()
{
    linkBusy_.assign(linkFree_.size(), 0);
    linkMsgs_.assign(linkFree_.size(), 0);
}

void
Mesh::reset()
{
    std::fill(linkFree_.begin(), linkFree_.end(), 0);
    flitHops_ = 0;
    std::fill(linkBusy_.begin(), linkBusy_.end(), 0);
    std::fill(linkMsgs_.begin(), linkMsgs_.end(), 0);
}

} // namespace tako
