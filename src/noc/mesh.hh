/**
 * @file
 * Mesh on-chip network model.
 *
 * Table 3: mesh, 128-bit flits and links, 2/1-cycle router/link delay.
 * Messages route XY. Each directed link keeps a next-free time; a message
 * of F flits occupies each link on its path for F cycles, so the model
 * captures both zero-load latency and serialization/queueing contention
 * without per-flit events.
 */

#ifndef TAKO_NOC_MESH_HH
#define TAKO_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "energy/energy.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace tako
{

class Domains;

struct MeshParams
{
    unsigned dimX = 4;
    unsigned dimY = 4;
    Tick routerDelay = 2;
    Tick linkDelay = 1;
    unsigned flitBytes = 16; ///< 128-bit flits.
};

class Mesh
{
  public:
    Mesh(const MeshParams &params, StatsRegistry &stats,
         EnergyModel &energy);

    unsigned numTiles() const { return params_.dimX * params_.dimY; }
    unsigned dimX() const { return params_.dimX; }
    unsigned dimY() const { return params_.dimY; }

    /** Manhattan hop count between two tiles. */
    unsigned hops(int src, int dst) const;

    /**
     * Deliver a @p bytes -byte message from @p src to @p dst starting at
     * @p now; reserves link time on the path.
     * @return latency until the tail flit arrives.
     */
    Tick traverse(Tick now, int src, int dst, unsigned bytes);

    /**
     * Domain-decomposed delivery: the message walks the XY path as a
     * chain of router-arrival events, reserving each directed link in
     * its owning tile's domain at the head flit's actual arrival time,
     * and the awaiting coroutine resumes *at the destination tile* when
     * the tail flit lands. Latency arithmetic per hop matches
     * traverse(); contention is resolved in arrival order (partition-
     * invariant) rather than at send time. The X leg hops column to
     * column (one event per router); the Y leg is one segment, since a
     * whole column shares a domain under the column-band plan.
     */
    Task<> walk(Domains &dom, int src, int dst, unsigned bytes);

    std::uint64_t flitHops() const { return flitHops_; }

    /**
     * Per-directed-link utilization (takoprof): piggybacks on the
     * linkFree_ reservation each traverse() already performs, counting
     * flit-cycles and messages per link. Off — and free — until enabled.
     * Index layout matches linkFree_: tile*4 + dir (E=0 W=1 N=2 S=3).
     */
    void enableLinkProfiling();
    const std::vector<std::uint64_t> &linkBusyCycles() const
    {
        return linkBusy_;
    }
    const std::vector<std::uint64_t> &linkMessages() const
    {
        return linkMsgs_;
    }

    void reset();

  private:
    /** Directed link index leaving @p tile in direction @p dir (0..3). */
    std::size_t
    linkIndex(int tile, int dir) const
    {
        return static_cast<std::size_t>(tile) * 4 + dir;
    }

    MeshParams params_;
    EnergyModel &energy_;
    Counter *messages_;
    Counter *localMessages_; ///< src == dst deliveries (no link, no hops)
    Counter *flitHopsStat_;
    std::vector<Tick> linkFree_;
    std::uint64_t flitHops_ = 0;
    std::vector<std::uint64_t> linkBusy_; ///< empty unless profiling
    std::vector<std::uint64_t> linkMsgs_;
};

} // namespace tako

#endif // TAKO_NOC_MESH_HH
