/**
 * @file
 * Suite aggregation: merge every run's machine-readable output (bench
 * Reporter rows or takosim --stats-json) into one BENCH_<suite>.json
 * and judge each golden expectation.
 *
 * Report schema (stable; consumed by CI and tools/plot_results.py):
 *
 *   {
 *     "schema": "takobench-v1",
 *     "suite": "quick", "git_rev": "06f017a", "jobs": 8,
 *     "wall_sec": 41.2, "passed": 17, "failed": 0,
 *     "runs": [
 *       {"name": "fig06", "target": "fig06_decompression",
 *        "status": "ok", "attempts": 1, "wall_sec": 2.1,
 *                        // wall_sec totals every attempt, so retried
 *                        // runs report their real cost

 *        "metrics": {"tako.speedup": 2.53, ...},
 *        "rows": [...],                       // bench table rows, if any
 *        "golden": [{"metric": "tako.speedup", "expected": 2.5,
 *                    "actual": 2.53, "rel_tol": 0.25, "abs_tol": 0,
 *                    "pass": true}]}
 *     ]
 *   }
 */

#ifndef TAKO_EXPT_REPORT_HH
#define TAKO_EXPT_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "expt/runner.hh"
#include "expt/spec.hh"

namespace tako::expt
{

/** Verdict on one golden expectation. */
struct MetricCheck
{
    std::string metric;
    GoldenMetric expect;
    double actual = 0;
    bool missing = false; ///< metric absent from the run's output
    bool pass = false;
};

struct RunReport
{
    const RunSpec *spec = nullptr;
    RunOutcome outcome;
    std::map<std::string, double> metrics;
    Json rows; ///< bench table rows (Null when the child has none)
    std::vector<MetricCheck> checks;

    /** Non-gating extras (RunSpec::extras) found in the run's metrics;
     *  names requested but absent land in extrasMissing instead. */
    std::map<std::string, double> extras;
    std::vector<std::string> extrasMissing;

    /** Process succeeded, output parsed, and every golden check held. */
    bool pass = false;
    std::string error; ///< human-readable cause when !pass
};

struct SuiteReport
{
    std::string suite;
    std::string gitRev;
    unsigned jobs = 1;
    double wallSec = 0;
    std::vector<RunReport> runs;

    unsigned numPassed() const;
    bool pass() const { return numPassed() == runs.size(); }

    Json toJson() const;
};

/**
 * Flatten one child's JSON output into golden-comparable metrics.
 * Understands both producers:
 *  - bench Reporter files: the "metrics" object is taken verbatim;
 *  - takosim --stats-json files: each counter becomes metric
 *    "<name>" = value (histograms contribute "<name>.mean"/".count").
 */
std::map<std::string, double> extractMetrics(const Json &childOutput);

/**
 * Join specs, process outcomes, and per-run output files into the suite
 * report. @p outputPaths[i] is where run i's child was told to write its
 * JSON (read here; absence or parse failure fails that run).
 */
SuiteReport buildReport(const SuiteSpec &spec,
                        const std::vector<RunOutcome> &outcomes,
                        const std::vector<std::string> &outputPaths,
                        unsigned jobs, double wallSec,
                        const std::string &gitRev);

/** One line per run plus a verdict, for terminal consumption. */
void printSummary(const SuiteReport &report, std::FILE *out);

} // namespace tako::expt

#endif // TAKO_EXPT_REPORT_HH
