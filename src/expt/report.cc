#include "expt/report.hh"

#include <cstdio>

namespace tako::expt
{

unsigned
SuiteReport::numPassed() const
{
    unsigned n = 0;
    for (const RunReport &r : runs)
        n += r.pass ? 1 : 0;
    return n;
}

std::map<std::string, double>
extractMetrics(const Json &out)
{
    std::map<std::string, double> m;
    if (out["metrics"].isObject()) {
        // Bench Reporter format.
        for (const auto &[k, v] : out["metrics"].asObject()) {
            if (v.isNumber())
                m[k] = v.asNumber();
        }
        return m;
    }
    if (out["counters"].isObject()) {
        // takosim --stats-json format (PR 1).
        for (const auto &[k, v] : out["counters"].asObject()) {
            if (v["value"].isNumber())
                m[k] = v["value"].asNumber();
        }
        for (const auto &[k, v] : out["histograms"].asObject()) {
            if (v["mean"].isNumber())
                m[k + ".mean"] = v["mean"].asNumber();
            if (v["count"].isNumber())
                m[k + ".count"] = v["count"].asNumber();
        }
    }
    return m;
}

SuiteReport
buildReport(const SuiteSpec &spec, const std::vector<RunOutcome> &outcomes,
            const std::vector<std::string> &outputPaths, unsigned jobs,
            double wallSec, const std::string &gitRev)
{
    SuiteReport rep;
    rep.suite = spec.suite;
    rep.gitRev = gitRev;
    rep.jobs = jobs;
    rep.wallSec = wallSec;

    for (std::size_t i = 0; i < spec.runs.size(); ++i) {
        RunReport r;
        r.spec = &spec.runs[i];
        r.outcome = outcomes[i];

        if (!r.outcome.ok()) {
            r.error = std::string("process ") +
                      runStatusName(r.outcome.status);
            if (r.outcome.status == RunStatus::Failed)
                r.error += " (exit " +
                           std::to_string(r.outcome.exitCode) + ")";
            else if (r.outcome.status == RunStatus::Crashed)
                r.error +=
                    " (signal " + std::to_string(r.outcome.exitCode) + ")";
        } else {
            std::string jerr;
            Json out = Json::parseFile(outputPaths[i], &jerr);
            if (!jerr.empty()) {
                r.error = "unreadable child output: " + jerr;
            } else {
                r.metrics = extractMetrics(out);
                r.rows = out["rows"];
                if (r.metrics.empty())
                    r.error = "child output has no metrics";
            }
        }

        if (r.error.empty()) {
            r.pass = true;
            for (const auto &[metric, expect] : r.spec->golden) {
                MetricCheck c;
                c.metric = metric;
                c.expect = expect;
                auto it = r.metrics.find(metric);
                if (it == r.metrics.end()) {
                    c.missing = true;
                } else {
                    c.actual = it->second;
                    c.pass = expect.accepts(c.actual);
                }
                if (!c.pass)
                    r.pass = false;
                r.checks.push_back(std::move(c));
            }
            if (!r.pass)
                r.error = "golden tolerance exceeded";
            // Extras are observational: record or note as missing, but
            // never change the verdict.
            for (const std::string &name : r.spec->extras) {
                auto it = r.metrics.find(name);
                if (it == r.metrics.end())
                    r.extrasMissing.push_back(name);
                else
                    r.extras.emplace(name, it->second);
            }
        }
        rep.runs.push_back(std::move(r));
    }
    return rep;
}

Json
SuiteReport::toJson() const
{
    Json doc;
    doc.set("schema", "takobench-v1");
    doc.set("suite", suite);
    doc.set("git_rev", gitRev);
    doc.set("jobs", static_cast<double>(jobs));
    doc.set("wall_sec", wallSec);
    doc.set("passed", static_cast<double>(numPassed()));
    doc.set("failed",
            static_cast<double>(runs.size() - numPassed()));

    Json runsArr;
    for (const RunReport &r : runs) {
        Json node;
        node.set("name", r.spec->name);
        node.set("target", r.spec->target);
        node.set("kind",
                 r.spec->kind == RunKind::Bench ? "bench" : "takosim");
        node.set("status", runStatusName(r.outcome.status));
        node.set("pass", r.pass);
        node.set("attempts", static_cast<double>(r.outcome.attempts));
        node.set("wall_sec", r.outcome.wallSec);
        if (!r.error.empty())
            node.set("error", r.error);

        Json metrics;
        for (const auto &[k, v] : r.metrics)
            metrics.set(k, v);
        if (!r.metrics.empty())
            node.set("metrics", std::move(metrics));
        if (r.rows.isArray())
            node.set("rows", r.rows);

        if (!r.checks.empty()) {
            Json golden;
            for (const MetricCheck &c : r.checks) {
                Json g;
                g.set("metric", c.metric);
                g.set("expected", c.expect.value);
                g.set("rel_tol", c.expect.relTol);
                g.set("abs_tol", c.expect.absTol);
                if (c.missing)
                    g.set("missing", true);
                else
                    g.set("actual", c.actual);
                g.set("pass", c.pass);
                golden.append(std::move(g));
            }
            node.set("golden", std::move(golden));
        }

        if (!r.extras.empty()) {
            Json extras;
            for (const auto &[k, v] : r.extras)
                extras.set(k, v);
            node.set("extras", std::move(extras));
        }
        if (!r.extrasMissing.empty()) {
            Json missing;
            for (const std::string &name : r.extrasMissing)
                missing.append(Json(name));
            node.set("extras_missing", std::move(missing));
        }
        runsArr.append(std::move(node));
    }
    doc.set("runs", std::move(runsArr));
    return doc;
}

void
printSummary(const SuiteReport &rep, std::FILE *out)
{
    for (const RunReport &r : rep.runs) {
        std::fprintf(out, "  %-24s %-8s %6.1fs", r.spec->name.c_str(),
                     r.pass ? "pass" : "FAIL", r.outcome.wallSec);
        if (r.outcome.attempts > 1)
            std::fprintf(out, "  (%u attempts, %.1fs total)",
                         r.outcome.attempts, r.outcome.wallSec);
        if (!r.pass && !r.error.empty())
            std::fprintf(out, "  %s", r.error.c_str());
        std::fprintf(out, "\n");
        for (const MetricCheck &c : r.checks) {
            if (c.pass)
                continue;
            if (c.missing)
                std::fprintf(out, "      %s: MISSING (expected %g)\n",
                             c.metric.c_str(), c.expect.value);
            else
                std::fprintf(out,
                             "      %s: %g outside %g +/- (rel %g, "
                             "abs %g)\n",
                             c.metric.c_str(), c.actual, c.expect.value,
                             c.expect.relTol, c.expect.absTol);
        }
        for (const auto &[k, v] : r.extras)
            std::fprintf(out, "      %s = %g\n", k.c_str(), v);
        for (const std::string &name : r.extrasMissing)
            std::fprintf(out, "      %s: (extra, not emitted)\n",
                         name.c_str());
    }
    std::fprintf(out, "suite %s: %u/%zu passed (%.1fs, -j%u)\n",
                 rep.suite.c_str(), rep.numPassed(), rep.runs.size(),
                 rep.wallSec, rep.jobs);
}

} // namespace tako::expt
