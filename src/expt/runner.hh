/**
 * @file
 * Multi-process experiment runner: fans a list of child commands out
 * across a worker pool (fork/exec of the existing bench/takosim
 * binaries), with per-run wall-clock timeouts, bounded retries on
 * crash/timeout, and graceful partial-failure reporting.
 *
 * Parallelism never touches simulation state — every run is its own
 * process with its own deterministic event queue — so results are
 * identical at any -j level; outcomes are returned in submission order
 * regardless of completion order.
 */

#ifndef TAKO_EXPT_RUNNER_HH
#define TAKO_EXPT_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

namespace tako::expt
{

/** One resolved child invocation (spec run -> argv + housekeeping). */
struct RunCommand
{
    std::string name;               ///< run name (progress + reports)
    std::vector<std::string> argv;  ///< argv[0] = absolute binary path
    std::string outputJson;         ///< file the child writes its metrics to
    std::string logPath;            ///< captures child stdout+stderr
    double timeoutSec = 120;
    unsigned retries = 1;           ///< extra attempts after crash/timeout
};

enum class RunStatus
{
    Ok,            ///< exit 0 within the timeout
    Failed,        ///< nonzero exit (assertion, mismatch, bad flag)
    Crashed,       ///< killed by a signal
    TimedOut,      ///< exceeded timeoutSec on every attempt
    MissingBinary, ///< argv[0] does not exist / not executable
};

const char *runStatusName(RunStatus s);

struct RunOutcome
{
    std::string name;
    RunStatus status = RunStatus::Ok;
    int exitCode = 0;      ///< exit status, signal if Crashed, errno if
                           ///< every spawn attempt failed
    unsigned attempts = 0; ///< total attempts made (1 = first try)
    double wallSec = 0;    ///< total wall time across all attempts —
                           ///< a run that timed out before succeeding
                           ///< reports what it really cost

    bool ok() const { return status == RunStatus::Ok; }
};

/**
 * Test seam: simulate fork() failures. The hook runs before each spawn;
 * a nonzero return makes that attempt fail as if fork() had set that
 * errno. Pass {} to clear. Process-global, tests only.
 */
void setSpawnFailureHook(
    std::function<int(const RunCommand &cmd, unsigned attempt)> hook);

/**
 * Execute @p cmds with at most @p jobs children in flight. Never
 * throws; a child that cannot be spawned or keeps failing is reported
 * in its outcome and the rest of the suite still runs.
 *
 * @p progress (optional) is called from the scheduling loop once per
 * finished run, in completion order, for live output.
 *
 * @p pulse (optional) multiplexes the children's takomon heartbeats:
 * the scheduling loop tails each running child's log file and forwards
 * every new "takomon: progress" line, tagged with the run's name, in
 * arrival order. Purely observational — the children are not probed,
 * their logs are read-only tailed — and unused when no child was asked
 * to beat (takosim --progress).
 */
std::vector<RunOutcome>
runAll(const std::vector<RunCommand> &cmds, unsigned jobs,
       const std::function<void(const RunOutcome &, unsigned done,
                                unsigned total)> &progress = {},
       const std::function<void(const std::string &runName,
                                const std::string &line)> &pulse = {});

} // namespace tako::expt

#endif // TAKO_EXPT_RUNNER_HH
