/**
 * @file
 * Minimal self-contained JSON document model for the experiment
 * subsystem: parse (specs, per-run child outputs) and write (suite
 * reports). Deliberately tiny — objects are ordered maps so output is
 * deterministic, numbers are doubles (the stats layer already commits
 * to that), and parse errors carry a line number so a typo in a 200-line
 * spec is findable.
 *
 * This is a *reader* counterpart to the write-only helpers in
 * sim/stats.hh (json::writeString/writeNumber), which it reuses.
 */

#ifndef TAKO_EXPT_JSON_HH
#define TAKO_EXPT_JSON_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace tako::expt
{

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), num_(n) {}
    Json(int n) : Json(static_cast<double>(n)) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    Json(const char *s) : Json(std::string(s)) {}
    Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool(bool dflt = false) const { return isBool() ? bool_ : dflt; }
    double asNumber(double dflt = 0) const { return isNumber() ? num_ : dflt; }
    const std::string &asString() const { return str_; }
    const Array &asArray() const { return arr_; }
    const Object &asObject() const { return obj_; }

    bool contains(const std::string &key) const
    {
        return isObject() && obj_.count(key) > 0;
    }

    /** Member lookup; a shared Null if absent or not an object. */
    const Json &operator[](const std::string &key) const;

    /** Mutable member access (makes this an object if Null). */
    Json &set(const std::string &key, Json v);

    /** Append to an array (makes this an array if Null). */
    Json &append(Json v);

    /**
     * Parse @p text. On failure returns Null and, if @p err is given,
     * fills it with "line N: what went wrong".
     */
    static Json parse(const std::string &text, std::string *err = nullptr);

    /** Parse a whole file; errors are prefixed with the path. */
    static Json parseFile(const std::string &path,
                          std::string *err = nullptr);

    /** Pretty-print with 2-space indentation and a trailing newline. */
    void write(std::ostream &os) const { write(os, 0); os << "\n"; }

    /** Serialize to a string (for tests / byte-identical comparisons). */
    std::string str() const;

  private:
    void write(std::ostream &os, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace tako::expt

#endif // TAKO_EXPT_JSON_HH
