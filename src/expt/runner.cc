#include "expt/runner.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

namespace tako::expt
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** A child attempt in flight. */
struct Child
{
    pid_t pid = -1;
    std::size_t index = 0; ///< into cmds / outcomes
    unsigned attempt = 1;
    Clock::time_point started;
    bool killed = false; ///< we delivered SIGKILL (timeout)
    long logOffset = 0;  ///< heartbeat tail cursor into the log file
};

/**
 * Tail @p c's log from its cursor, forwarding every complete new
 * "takomon: progress" line through @p pulse. The cursor only advances
 * past whole lines, so a line caught mid-write is picked up complete on
 * the next pass.
 */
void
pumpHeartbeats(const RunCommand &cmd, Child &c,
               const std::function<void(const std::string &,
                                        const std::string &)> &pulse)
{
    if (cmd.logPath.empty())
        return;
    std::FILE *f = std::fopen(cmd.logPath.c_str(), "rb");
    if (!f)
        return;
    std::string chunk;
    if (std::fseek(f, c.logOffset, SEEK_SET) == 0) {
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            chunk.append(buf, n);
    }
    std::fclose(f);
    const auto lastNl = chunk.rfind('\n');
    if (lastNl == std::string::npos)
        return;
    chunk.resize(lastNl + 1);
    c.logOffset += static_cast<long>(chunk.size());
    std::size_t pos = 0;
    while (pos < chunk.size()) {
        const auto nl = chunk.find('\n', pos);
        const std::string line = chunk.substr(pos, nl - pos);
        if (line.rfind("takomon: progress", 0) == 0)
            pulse(cmd.name, line);
        pos = nl + 1;
    }
}

bool
isExecutable(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode) &&
           ::access(path.c_str(), X_OK) == 0;
}

/**
 * fork/exec one attempt. stdout+stderr go to the command's log file
 * (append: retries accumulate in one log). Returns -1 on spawn failure.
 */
pid_t
spawn(const RunCommand &cmd)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;

    // Child. Own process group so a timeout can kill helpers too.
    ::setpgid(0, 0);
    if (!cmd.logPath.empty()) {
        const int fd = ::open(cmd.logPath.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
        if (fd >= 0) {
            ::dup2(fd, STDOUT_FILENO);
            ::dup2(fd, STDERR_FILENO);
            if (fd > STDERR_FILENO)
                ::close(fd);
        }
    }
    std::vector<char *> argv;
    argv.reserve(cmd.argv.size() + 1);
    for (const std::string &a : cmd.argv)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "takobench: exec %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
}

/** Test seam: nonzero return = simulated fork() errno (see runner.hh). */
std::function<int(const RunCommand &, unsigned)> spawnFailureHook;

} // namespace

void
setSpawnFailureHook(std::function<int(const RunCommand &, unsigned)> hook)
{
    spawnFailureHook = std::move(hook);
}

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Failed: return "failed";
      case RunStatus::Crashed: return "crashed";
      case RunStatus::TimedOut: return "timeout";
      case RunStatus::MissingBinary: return "missing-binary";
    }
    return "?";
}

std::vector<RunOutcome>
runAll(const std::vector<RunCommand> &cmds, unsigned jobs,
       const std::function<void(const RunOutcome &, unsigned done,
                                unsigned total)> &progress,
       const std::function<void(const std::string &runName,
                                const std::string &line)> &pulse)
{
    if (jobs == 0)
        jobs = 1;

    std::vector<RunOutcome> outcomes(cmds.size());
    for (std::size_t i = 0; i < cmds.size(); ++i)
        outcomes[i].name = cmds[i].name;

    std::map<pid_t, Child> running;
    // Attempts whose fork() failed, waiting to be retried on a later
    // scheduling pass — the pool sleeps between passes, so a transient
    // EAGAIN (pid/ulimit pressure) gets breathing room to clear.
    std::vector<std::pair<std::size_t, unsigned>> spawnRetries;
    // Wall time accumulated over every finished attempt of each run, so
    // a run that timed out before succeeding reports its real cost.
    std::vector<double> accumWall(cmds.size(), 0.0);
    std::size_t next = 0; ///< next command index to launch
    unsigned done = 0;
    Clock::time_point lastPulseScan = Clock::now();

    auto finish = [&](std::size_t idx, RunStatus status, int code,
                      unsigned attempt) {
        RunOutcome &out = outcomes[idx];
        out.status = status;
        out.exitCode = code;
        out.attempts = attempt;
        out.wallSec = accumWall[idx];
        ++done;
        if (progress)
            progress(out, done, static_cast<unsigned>(cmds.size()));
    };

    auto launch = [&](std::size_t idx, unsigned attempt) {
        const RunCommand &cmd = cmds[idx];
        if (cmd.argv.empty() || !isExecutable(cmd.argv[0])) {
            finish(idx, RunStatus::MissingBinary, 0, attempt);
            return;
        }
        // A fresh attempt must not inherit a half-written metrics file
        // from a crashed or killed predecessor.
        if (!cmd.outputJson.empty())
            ::unlink(cmd.outputJson.c_str());
        const int injected =
            spawnFailureHook ? spawnFailureHook(cmd, attempt) : 0;
        const pid_t pid = injected ? -1 : spawn(cmd);
        if (pid < 0) {
            const int err = injected ? injected : errno;
            std::fprintf(stderr,
                         "takobench: spawn %s (attempt %u): %s\n",
                         cmd.name.c_str(), attempt, std::strerror(err));
            // A failed fork() is as transient as a crash: retry it
            // through the same bounded budget instead of giving up.
            if (attempt <= cmd.retries)
                spawnRetries.emplace_back(idx, attempt + 1);
            else
                finish(idx, RunStatus::Crashed, err, attempt);
            return;
        }
        Child c{pid, idx, attempt, Clock::now(), false, 0};
        // Logs append across retries: the heartbeat tail starts where
        // this attempt's output begins, not at the predecessor's lines.
        struct stat st;
        if (!cmd.logPath.empty() &&
            ::stat(cmd.logPath.c_str(), &st) == 0)
            c.logOffset = static_cast<long>(st.st_size);
        running[pid] = c;
    };

    while (next < cmds.size() || !running.empty() ||
           !spawnRetries.empty()) {
        if (!spawnRetries.empty()) {
            const auto pending = std::move(spawnRetries);
            spawnRetries.clear();
            for (const auto &[idx, attempt] : pending)
                launch(idx, attempt);
        }
        while (next < cmds.size() && running.size() < jobs) {
            launch(next, 1);
            ++next;
        }
        if (running.empty()) {
            if (!spawnRetries.empty())
                ::usleep(2000); // let transient spawn pressure clear
            continue;
        }

        // Reap anything that finished; kill anything over its timeout.
        int wstatus = 0;
        const pid_t pid = ::waitpid(-1, &wstatus, WNOHANG);
        if (pid > 0 && !running.count(pid)) {
            // Not one of ours: an inherited or double-reaped child.
            // Its exit status is lost to the real owner — say so
            // instead of silently swallowing it.
            std::fprintf(stderr,
                         "takobench: reaped stray pid %d "
                         "(wstatus 0x%x) not in the run table\n",
                         static_cast<int>(pid), wstatus);
        }
        if (pid > 0 && running.count(pid)) {
            Child c = running[pid];
            running.erase(pid);
            if (pulse)
                pumpHeartbeats(cmds[c.index], c, pulse); // final lines
            const RunCommand &cmd = cmds[c.index];
            const double wall = secondsSince(c.started);
            accumWall[c.index] += wall;

            RunStatus status;
            int code = 0;
            if (c.killed) {
                status = RunStatus::TimedOut;
            } else if (WIFSIGNALED(wstatus)) {
                status = RunStatus::Crashed;
                code = WTERMSIG(wstatus);
            } else if (WEXITSTATUS(wstatus) != 0) {
                status = RunStatus::Failed;
                code = WEXITSTATUS(wstatus);
            } else {
                status = RunStatus::Ok;
            }

            // Crashes and timeouts are retried (transient OOM, runaway
            // attempt); clean nonzero exits are real answers — a golden
            // mismatch or bad flag won't change on a second try.
            const bool retryable = status == RunStatus::Crashed ||
                                   status == RunStatus::TimedOut;
            if (retryable && c.attempt <= cmd.retries)
                launch(c.index, c.attempt + 1);
            else
                finish(c.index, status, code, c.attempt);
            continue; // reap eagerly before sleeping again
        }

        for (auto &[cpid, c] : running) {
            if (!c.killed &&
                secondsSince(c.started) > cmds[c.index].timeoutSec) {
                c.killed = true;
                ::kill(-cpid, SIGKILL); // whole process group
                ::kill(cpid, SIGKILL);  // in case setpgid lost the race
            }
        }
        // Multiplex the children's heartbeats, throttled so the tailing
        // stays invisible next to the 2ms reaping cadence.
        if (pulse && secondsSince(lastPulseScan) > 0.25) {
            lastPulseScan = Clock::now();
            for (auto &[cpid, c] : running)
                pumpHeartbeats(cmds[c.index], c, pulse);
        }
        // 2ms keeps timeout detection sharp without measurable load;
        // children run for seconds to minutes.
        ::usleep(2000);
    }
    return outcomes;
}

} // namespace tako::expt
