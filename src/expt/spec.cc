#include "expt/spec.hh"

#include <set>
#include <sstream>

#include "sim/stats.hh"

namespace tako::expt
{

namespace
{

/** Reject any key of @p obj not in @p allowed (catches misspellings). */
bool
checkKeys(const Json &obj, const std::set<std::string> &allowed,
          const std::string &where, std::string &err)
{
    for (const auto &[k, v] : obj.asObject()) {
        if (!allowed.count(k)) {
            err = where + ": unknown key \"" + k + "\"";
            return false;
        }
    }
    return true;
}

bool
parseGolden(const Json &node, const std::string &where,
            std::map<std::string, GoldenMetric> &out, std::string &err)
{
    if (!node.isObject()) {
        err = where + ": \"golden\" must be an object";
        return false;
    }
    for (const auto &[metric, expect] : node.asObject()) {
        GoldenMetric g;
        if (expect.isNumber()) {
            // Shorthand: "metric": 2.5 means exact match.
            g.value = expect.asNumber();
        } else if (expect.isObject()) {
            const std::string gw = where + " golden \"" + metric + "\"";
            if (!checkKeys(expect, {"value", "rel_tol", "abs_tol"}, gw,
                           err))
                return false;
            if (!expect["value"].isNumber()) {
                err = gw + ": missing numeric \"value\"";
                return false;
            }
            g.value = expect["value"].asNumber();
            g.relTol = expect["rel_tol"].asNumber(0);
            g.absTol = expect["abs_tol"].asNumber(0);
            if (g.relTol < 0 || g.absTol < 0) {
                err = gw + ": tolerances must be >= 0";
                return false;
            }
        } else {
            err = where + " golden \"" + metric +
                  "\": expected number or {value, rel_tol, abs_tol}";
            return false;
        }
        out.emplace(metric, g);
    }
    return true;
}

/** Flatten a takosim/args object into ordered --key=value pairs. */
bool
parseArgs(const Json &node, const std::string &where,
          std::vector<std::pair<std::string, std::string>> &out,
          std::string &err)
{
    for (const auto &[k, v] : node.asObject()) {
        std::string val;
        if (v.isString()) {
            val = v.asString();
        } else if (v.isNumber()) {
            std::ostringstream os;
            json::writeNumber(os, v.asNumber());
            val = os.str();
        } else if (v.isBool()) {
            val = v.asBool() ? "1" : "0";
        } else {
            err = where + ": argument \"" + k +
                  "\" must be a string, number, or bool";
            return false;
        }
        out.emplace_back(k, val);
    }
    return true;
}

} // namespace

bool
SuiteSpec::parse(const Json &doc, SuiteSpec &out, std::string &err)
{
    out = SuiteSpec{};
    if (!doc.isObject()) {
        err = "spec must be a JSON object";
        return false;
    }
    if (!checkKeys(doc, {"suite", "defaults", "runs"}, "spec", err))
        return false;
    if (!doc["suite"].isString() || doc["suite"].asString().empty()) {
        err = "spec: missing \"suite\" name";
        return false;
    }
    out.suite = doc["suite"].asString();

    RunSpec defaults;
    const Json &def = doc["defaults"];
    if (!def.isNull()) {
        if (!def.isObject() ||
            !checkKeys(def, {"timeout_sec", "retries", "quick"},
                       "defaults", err)) {
            if (err.empty())
                err = "defaults: must be an object";
            return false;
        }
        defaults.timeoutSec = def["timeout_sec"].asNumber(
            defaults.timeoutSec);
        defaults.retries = static_cast<unsigned>(
            def["retries"].asNumber(defaults.retries));
        defaults.quick = def["quick"].asBool(defaults.quick);
    }

    if (!doc["runs"].isArray() || doc["runs"].asArray().empty()) {
        err = "spec: \"runs\" must be a non-empty array";
        return false;
    }

    std::set<std::string> names;
    for (const Json &rnode : doc["runs"].asArray()) {
        RunSpec r = defaults;
        if (!rnode.isObject()) {
            err = "runs: each run must be an object";
            return false;
        }
        r.name = rnode["name"].asString();
        if (r.name.empty()) {
            err = "runs: every run needs a non-empty \"name\"";
            return false;
        }
        const std::string where = "run \"" + r.name + "\"";
        if (!names.insert(r.name).second) {
            err = where + ": duplicate run name";
            return false;
        }
        if (!checkKeys(rnode,
                       {"name", "bench", "takosim", "args", "golden",
                        "extras", "timeout_sec", "retries", "quick"},
                       where, err))
            return false;

        const bool has_bench = !rnode["bench"].isNull();
        const bool has_sim = !rnode["takosim"].isNull();
        if (has_bench == has_sim) {
            err = where +
                  ": exactly one of \"bench\" or \"takosim\" required";
            return false;
        }
        if (has_bench) {
            if (!rnode["bench"].isString() ||
                rnode["bench"].asString().empty()) {
                err = where + ": \"bench\" must be a binary name";
                return false;
            }
            r.kind = RunKind::Bench;
            r.target = rnode["bench"].asString();
            if (!rnode["args"].isNull()) {
                if (!rnode["args"].isObject()) {
                    err = where + ": \"args\" must be an object";
                    return false;
                }
                if (!parseArgs(rnode["args"], where, r.args, err))
                    return false;
            }
        } else {
            if (!rnode["takosim"].isObject()) {
                err = where + ": \"takosim\" must be an object of "
                              "option=value pairs";
                return false;
            }
            const bool has_workload =
                rnode["takosim"].contains("workload");
            const bool has_trace = rnode["takosim"].contains("trace");
            if (has_workload == has_trace) {
                err = where + ": takosim runs need exactly one of "
                              "\"workload\" or \"trace\"";
                return false;
            }
            if (!rnode["args"].isNull()) {
                err = where + ": takosim runs take options inside "
                              "\"takosim\", not \"args\"";
                return false;
            }
            r.kind = RunKind::Takosim;
            r.traceRun = has_trace;
            r.target = rnode["takosim"][has_trace ? "trace" : "workload"]
                           .asString();
            if (r.target.empty()) {
                err = where + ": \"" +
                      (has_trace ? std::string("trace")
                                 : std::string("workload")) +
                      "\" must be a non-empty string";
                return false;
            }
            if (!parseArgs(rnode["takosim"], where, r.args, err))
                return false;
            // workload/trace is carried in target; drop it from the
            // args so the command builder doesn't emit it twice.
            std::erase_if(r.args, [](const auto &kv) {
                return kv.first == "workload" || kv.first == "trace";
            });
        }

        r.timeoutSec = rnode["timeout_sec"].asNumber(r.timeoutSec);
        if (r.timeoutSec <= 0) {
            err = where + ": \"timeout_sec\" must be > 0";
            return false;
        }
        if (!rnode["retries"].isNull())
            r.retries =
                static_cast<unsigned>(rnode["retries"].asNumber(0));
        r.quick = rnode["quick"].asBool(r.quick);
        if (!rnode["golden"].isNull() &&
            !parseGolden(rnode["golden"], where, r.golden, err))
            return false;
        if (!rnode["extras"].isNull()) {
            if (!rnode["extras"].isArray()) {
                err = where +
                      ": \"extras\" must be an array of metric names";
                return false;
            }
            for (const Json &e : rnode["extras"].asArray()) {
                if (!e.isString() || e.asString().empty()) {
                    err = where + ": \"extras\" entries must be "
                                  "non-empty strings";
                    return false;
                }
                r.extras.push_back(e.asString());
            }
        }
        out.runs.push_back(std::move(r));
    }
    return true;
}

bool
SuiteSpec::parseFile(const std::string &path, SuiteSpec &out,
                     std::string &err)
{
    std::string jerr;
    Json doc = Json::parseFile(path, &jerr);
    if (!jerr.empty()) {
        err = jerr;
        return false;
    }
    if (!parse(doc, out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

} // namespace tako::expt
