/**
 * @file
 * Declarative experiment specs for takobench.
 *
 * A spec file (JSON) names a suite of runs. Each run launches either a
 * figure-bench binary or a takosim workload, with parameter overrides,
 * and optionally pins expected "golden" metrics with tolerances. The
 * schema (see EXPERIMENTS.md for the full reference):
 *
 *   {
 *     "suite": "quick",
 *     "defaults": {"timeout_sec": 120, "retries": 1, "quick": true},
 *     "runs": [
 *       {"name": "fig06", "bench": "fig06_decompression",
 *        "golden": {"tako.speedup": {"value": 2.5, "rel_tol": 0.25}}},
 *       {"name": "decompress-tako",
 *        "takosim": {"workload": "decompress", "variant": "tako",
 *                    "seed": 1},
 *        "golden": {"engine.instrs": {"value": 60416, "rel_tol": 0.2}}}
 *     ]
 *   }
 *
 * Parsing is strict: unknown keys, duplicate run names, and malformed
 * golden entries are errors, so a misspelled field fails loudly instead
 * of silently running the wrong experiment.
 */

#ifndef TAKO_EXPT_SPEC_HH
#define TAKO_EXPT_SPEC_HH

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "expt/json.hh"

namespace tako::expt
{

/** Expected value for one metric, with tolerance. A metric passes iff
 *  |actual - value| <= max(abs_tol, rel_tol * |value|). */
struct GoldenMetric
{
    double value = 0;
    double relTol = 0;
    double absTol = 0;

    bool
    accepts(double actual) const
    {
        const double slack = std::max(absTol, relTol * std::abs(value));
        return std::abs(actual - value) <= slack;
    }
};

enum class RunKind { Bench, Takosim };

/** One run of the suite: a child process plus its golden expectations. */
struct RunSpec
{
    std::string name;   ///< unique within the suite; names output files
    RunKind kind = RunKind::Bench;
    /** Bench binary name, takosim workload, or (traceRun) trace file. */
    std::string target;
    /** Takosim runs only: target is a takotrace file replayed via
     *  `--trace=FILE` instead of a `--workload` name. */
    bool traceRun = false;

    /** Extra `--key=value` arguments, in spec order (takosim: variant /
     *  cores / seed / ...; bench: forwarded verbatim). */
    std::vector<std::pair<std::string, std::string>> args;

    bool quick = false;        ///< pass --quick to the child
    double timeoutSec = 120;   ///< wall-clock kill timer per attempt
    unsigned retries = 1;      ///< extra attempts after crash/timeout

    /** Metric name -> expectation. Bench metrics use the Reporter's flat
     *  keys ("tako.speedup"); takosim metrics use counter names. */
    std::map<std::string, GoldenMetric> golden;

    /** Metric names recorded in the report without an expectation —
     *  non-gating extras (e.g. takoprof's prof.* counters). A missing
     *  extra is noted in the report but never fails the run. */
    std::vector<std::string> extras;
};

struct SuiteSpec
{
    std::string suite;
    std::vector<RunSpec> runs;

    /**
     * Parse and validate @p doc. Returns false and sets @p err on any
     * schema violation (the suite is then unusable).
     */
    static bool parse(const Json &doc, SuiteSpec &out, std::string &err);

    /** Load from @p path; errors are prefixed with the path. */
    static bool parseFile(const std::string &path, SuiteSpec &out,
                          std::string &err);
};

} // namespace tako::expt

#endif // TAKO_EXPT_SPEC_HH
