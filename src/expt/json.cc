#include "expt/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/stats.hh"

namespace tako::expt
{

namespace
{

const Json kNull;

/** Recursive-descent JSON parser tracking the current line for errors. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    Json
    parseDocument()
    {
        Json v = parseValue();
        if (failed_)
            return Json();
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after JSON value");
            return Json();
        }
        return v;
    }

  private:
    Json
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        switch (text_[pos_]) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return Json(parseString());
          case 't':
            return parseLiteral("true", Json(true));
          case 'f':
            return parseLiteral("false", Json(false));
          case 'n':
            return parseLiteral("null", Json());
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        ++pos_; // '{'
        Json::Object obj;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return Json(std::move(obj));
        }
        while (!failed_) {
            skipWs();
            if (peek() != '"') {
                fail("expected '\"' to begin object key");
                break;
            }
            std::string key = parseString();
            if (failed_)
                break;
            if (obj.count(key)) {
                fail("duplicate key \"" + key + "\"");
                break;
            }
            skipWs();
            if (peek() != ':') {
                fail("expected ':' after key \"" + key + "\"");
                break;
            }
            ++pos_;
            obj.emplace(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return Json(std::move(obj));
            }
            fail("expected ',' or '}' in object");
        }
        return Json();
    }

    Json
    parseArray()
    {
        ++pos_; // '['
        Json::Array arr;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return Json(std::move(arr));
        }
        while (!failed_) {
            arr.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return Json(std::move(arr));
            }
            fail("expected ',' or ']' in array");
        }
        return Json();
    }

    std::string
    parseString()
    {
        ++pos_; // '"'
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n') {
                fail("unterminated string");
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad hex digit in \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode the BMP code point (specs are ASCII in
                // practice; surrogate pairs are not supported).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail(std::string("bad escape '\\") + esc + "'");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (tok.empty() || end != tok.c_str() + tok.size()) {
            fail("invalid number '" + (tok.empty()
                     ? std::string(1, text_[start]) : tok) + "'");
            return Json();
        }
        return Json(v);
    }

    Json
    parseLiteral(const char *word, Json value)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0) {
            fail(std::string("invalid literal (expected '") + word + "')");
            return Json();
        }
        pos_ += len;
        return value;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    void
    fail(const std::string &what)
    {
        if (failed_)
            return;
        failed_ = true;
        if (err_)
            *err_ = "line " + std::to_string(line_) + ": " + what;
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
    unsigned line_ = 1;
    bool failed_ = false;
};

} // namespace

const Json &
Json::operator[](const std::string &key) const
{
    if (!isObject())
        return kNull;
    auto it = obj_.find(key);
    return it == obj_.end() ? kNull : it->second;
}

Json &
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    obj_[key] = std::move(v);
    return *this;
}

Json &
Json::append(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    arr_.push_back(std::move(v));
    return *this;
}

Json
Json::parse(const std::string &text, std::string *err)
{
    if (err)
        err->clear();
    Parser p(text, err);
    return p.parseDocument();
}

Json
Json::parseFile(const std::string &path, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = path + ": cannot open";
        return Json();
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string perr;
    Json v = parse(buf.str(), &perr);
    if (!perr.empty() && err)
        *err = path + ": " + perr;
    return v;
}

void
Json::write(std::ostream &os, int depth) const
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    const std::string pad1(static_cast<std::size_t>(depth + 1) * 2, ' ');
    switch (type_) {
      case Type::Null:
        os << "null";
        break;
      case Type::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Type::Number:
        json::writeNumber(os, num_);
        break;
      case Type::String:
        json::writeString(os, str_);
        break;
      case Type::Array: {
        if (arr_.empty()) {
            os << "[]";
            break;
        }
        os << "[";
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            os << (i ? ",\n" : "\n") << pad1;
            arr_[i].write(os, depth + 1);
        }
        os << "\n" << pad << "]";
        break;
      }
      case Type::Object: {
        if (obj_.empty()) {
            os << "{}";
            break;
        }
        os << "{";
        bool first = true;
        for (const auto &[k, v] : obj_) {
            os << (first ? "\n" : ",\n") << pad1;
            first = false;
            json::writeString(os, k);
            os << ": ";
            v.write(os, depth + 1);
        }
        os << "\n" << pad << "}";
        break;
      }
    }
}

std::string
Json::str() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

} // namespace tako::expt
