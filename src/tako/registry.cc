#include "tako/registry.hh"

#include "sim/trace.hh"

namespace tako
{

const MorphBinding *
MorphRegistry::insert(Morph &morph, MorphLevel level, Addr base,
                      std::uint64_t size, bool phantom, int tile)
{
    MorphBinding b;
    b.morph = &morph;
    b.id = nextId_++;
    b.level = level;
    b.phantom = phantom;
    b.tile = tile;
    const MorphTraits &t = morph.traits();
    b.hasMiss = t.hasMiss;
    b.hasEviction = t.hasEviction;
    b.hasWriteback = t.hasWriteback;
    b.base = base;
    b.length = size;
    TRACE(Morph, 0, "register '%s' %s %s [%#llx, +%llu) id %u",
          t.name.c_str(),
          level == MorphLevel::Private ? "PRIVATE" : "SHARED",
          phantom ? "phantom" : "real", (unsigned long long)base,
          (unsigned long long)size, b.id);
    storage_.push_back(b);
    const MorphBinding *mb = &storage_.back();
    const bool ok = master_.insert(base, size, mb);
    fatal_if(!ok,
             "morph '%s': range [%#llx, +%llu) overlaps an existing "
             "registration (only one Morph per address, Sec. 4.1)",
             t.name.c_str(), (unsigned long long)base,
             (unsigned long long)size);
    // rTLB shootdown: one apply per tile, always `tiles` messages in the
    // same stream order regardless of partition, each landing in its
    // tile's domain one quantum out. The registration round trip
    // (registrationLat) covers this, so the caller never resumes before
    // every replica agrees.
    for (unsigned tl = 0; tl < dom_.tiles(); ++tl) {
        dom_.post(static_cast<int>(tl), dom_.quantum(),
                  [this, tl, base, size, mb]() {
                      TileView &v = views_[tl];
                      v.map.insert(base, size, mb);
                      ++v.gen;
                  });
    }
    return mb;
}

Task<const MorphBinding *>
MorphRegistry::registerPhantom(Morph &morph, MorphLevel level,
                               std::uint64_t size, int tile)
{
    fatal_if(size == 0, "empty phantom range");
    const int home = dom_.ctxTile(0);
    // Allocation and insertion are serialized at tile 0's domain.
    co_await dom_.hopTo(0, dom_.quantum());
    // Page-align phantom ranges: huge pages are easy here because
    // phantom memory has no physical backing to fragment (Sec. 6).
    const std::uint64_t page = 2 * 1024 * 1024;
    const std::uint64_t len = divCeil(size, page) * page;
    const Addr base = nextPhantom_;
    nextPhantom_ += len;
    const MorphBinding *mb = insert(morph, level, base, len, true, tile);
    co_await dom_.hopTo(home, registrationLat);
    co_return mb;
}

Task<const MorphBinding *>
MorphRegistry::registerReal(Morph &morph, MorphLevel level, Addr base,
                            std::uint64_t size, int tile)
{
    fatal_if(size == 0, "empty real range");
    fatal_if(isPhantomAddr(base), "registerReal on a phantom address");
    // The range is flushed before the Morph takes effect so that every
    // cached line carries the morph tag bit afterwards.
    co_await mem_.flushRangePlain(lineAlign(base),
                                  divCeil(base + size, lineBytes) *
                                          lineBytes -
                                      lineAlign(base));
    const int home = dom_.ctxTile(0);
    co_await dom_.hopTo(0, dom_.quantum());
    const MorphBinding *mb = insert(morph, level, base, size, false, tile);
    co_await dom_.hopTo(home, registrationLat);
    co_return mb;
}

Task<>
MorphRegistry::flushData(const MorphBinding *binding)
{
    panic_if(!binding, "flushData(nullptr)");
    co_await mem_.flushMorphData(*binding);
}

Task<>
MorphRegistry::unregister(const MorphBinding *binding)
{
    panic_if(!binding, "unregister(nullptr)");
    const Addr base = binding->base;
    co_await mem_.flushMorphData(*binding);
    const int home = dom_.ctxTile(0);
    co_await dom_.hopTo(0, dom_.quantum());
    master_.erase(base);
    for (unsigned tl = 0; tl < dom_.tiles(); ++tl) {
        dom_.post(static_cast<int>(tl), dom_.quantum(),
                  [this, tl, base]() {
                      TileView &v = views_[tl];
                      v.map.erase(base);
                      ++v.gen;
                  });
    }
    co_await dom_.hopTo(home, registrationLat);
    // Phantom ranges are bump-allocated and not recycled; a freed range
    // simply becomes unreachable (accesses to it panic).
}

} // namespace tako
