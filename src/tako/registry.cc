#include "tako/registry.hh"

#include "sim/trace.hh"

namespace tako
{

const MorphBinding *
MorphRegistry::insert(Morph &morph, MorphLevel level, Addr base,
                      std::uint64_t size, bool phantom, int tile)
{
    MorphBinding b;
    b.morph = &morph;
    b.id = nextId_++;
    b.level = level;
    b.phantom = phantom;
    b.tile = tile;
    const MorphTraits &t = morph.traits();
    b.hasMiss = t.hasMiss;
    b.hasEviction = t.hasEviction;
    b.hasWriteback = t.hasWriteback;
    b.base = base;
    b.length = size;
    TRACE(Morph, 0, "register '%s' %s %s [%#llx, +%llu) id %u",
          t.name.c_str(),
          level == MorphLevel::Private ? "PRIVATE" : "SHARED",
          phantom ? "phantom" : "real", (unsigned long long)base,
          (unsigned long long)size, b.id);
    const bool ok = map_.insert(base, size, b);
    ++gen_; // invalidate per-tile MRU resolve caches
    fatal_if(!ok,
             "morph '%s': range [%#llx, +%llu) overlaps an existing "
             "registration (only one Morph per address, Sec. 4.1)",
             t.name.c_str(), (unsigned long long)base,
             (unsigned long long)size);
    return &map_.find(base)->value;
}

Task<const MorphBinding *>
MorphRegistry::registerPhantom(Morph &morph, MorphLevel level,
                               std::uint64_t size, int tile)
{
    fatal_if(size == 0, "empty phantom range");
    // Page-align phantom ranges: huge pages are easy here because
    // phantom memory has no physical backing to fragment (Sec. 6).
    const std::uint64_t page = 2 * 1024 * 1024;
    const std::uint64_t len = divCeil(size, page) * page;
    const Addr base = nextPhantom_;
    nextPhantom_ += len;
    co_await Delay{eq_, registrationLat};
    co_return insert(morph, level, base, len, true, tile);
}

Task<const MorphBinding *>
MorphRegistry::registerReal(Morph &morph, MorphLevel level, Addr base,
                            std::uint64_t size, int tile)
{
    fatal_if(size == 0, "empty real range");
    fatal_if(isPhantomAddr(base), "registerReal on a phantom address");
    // The range is flushed before the Morph takes effect so that every
    // cached line carries the morph tag bit afterwards.
    co_await mem_.flushRangePlain(lineAlign(base),
                                  divCeil(base + size, lineBytes) *
                                          lineBytes -
                                      lineAlign(base));
    co_await Delay{eq_, registrationLat};
    co_return insert(morph, level, base, size, false, tile);
}

Task<>
MorphRegistry::flushData(const MorphBinding *binding)
{
    panic_if(!binding, "flushData(nullptr)");
    co_await mem_.flushMorphData(*binding);
}

Task<>
MorphRegistry::unregister(const MorphBinding *binding)
{
    panic_if(!binding, "unregister(nullptr)");
    const Addr base = binding->base;
    co_await mem_.flushMorphData(*binding);
    co_await Delay{eq_, registrationLat};
    map_.erase(base);
    ++gen_; // invalidate per-tile MRU resolve caches
    // Phantom ranges are bump-allocated and not recycled; a freed range
    // simply becomes unreachable (accesses to it panic).
}

} // namespace tako
