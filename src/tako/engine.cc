#include "tako/engine.hh"

#include <algorithm>

#include "prof/profiler.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"
#include "sim/tracesink.hh"

namespace tako
{

// ---------------------------------------------------------------------
// Morph defaults
// ---------------------------------------------------------------------

Task<>
Morph::onMiss(EngineCtx &)
{
    panic("morph '%s' has no onMiss", traits_.name.c_str());
}

Task<>
Morph::onEviction(EngineCtx &)
{
    panic("morph '%s' has no onEviction", traits_.name.c_str());
}

Task<>
Morph::onWriteback(EngineCtx &)
{
    panic("morph '%s' has no onWriteback", traits_.name.c_str());
}

// ---------------------------------------------------------------------
// EngineCtx
// ---------------------------------------------------------------------

EngineCtx::EngineCtx(Engine &engine, const MorphBinding &binding,
                     CallbackKind kind, Addr line, LineData captured,
                     bool dirty)
    : engine_(engine),
      binding_(binding),
      kind_(kind),
      line_(line),
      captured_(captured),
      dirty_(dirty)
{
}

int
EngineCtx::tile() const
{
    return engine_.tile();
}

EventQueue &
EngineCtx::eq() const
{
    return engine_.eq();
}

std::uint64_t
EngineCtx::lineWord(unsigned i) const
{
    panic_if(i >= wordsPerLine, "lineWord index %u out of range", i);
    if (kind_ == CallbackKind::Miss)
        return engine_.mem().storeFor(line_).read64(line_ + i * 8);
    return captured_[i];
}

void
EngineCtx::setLineWord(unsigned i, std::uint64_t value)
{
    panic_if(kind_ != CallbackKind::Miss,
             "setLineWord outside onMiss (the line has left the cache)");
    panic_if(i >= wordsPerLine, "setLineWord index %u out of range", i);
    engine_.mem().storeFor(line_).write64(line_ + i * 8, value);
}

namespace
{

int
callbackLevelOf(const MorphBinding &b)
{
    return b.level == MorphLevel::Private ? 0 : 1;
}

/** One ported engine memory op: bounded by the engine's memory PEs. */
Task<>
portedAccess(Engine &engine, int level, MemCmd cmd, Addr addr,
             std::uint64_t wdata, std::uint64_t *out,
             bool no_fetch = false, bool use_once = false)
{
    Semaphore &sem = engine.memPortSem();
    co_await sem.acquire();
    const std::uint64_t v = co_await engine.memAccess(
        cmd, addr, wdata, level, no_fetch, use_once);
    sem.release();
    if (out)
        *out = v;
}

} // namespace

Task<std::uint64_t>
EngineCtx::load(Addr addr)
{
    std::uint64_t v = 0;
    co_await portedAccess(engine_, callbackLevelOf(binding_), MemCmd::Load,
                          addr, 0, &v);
    co_return v;
}

Task<>
EngineCtx::store(Addr addr, std::uint64_t value)
{
    co_await portedAccess(engine_, callbackLevelOf(binding_),
                          MemCmd::Store, addr, value, nullptr);
}

Task<std::uint64_t>
EngineCtx::atomicAdd(Addr addr, std::uint64_t delta)
{
    std::uint64_t v = 0;
    co_await portedAccess(engine_, callbackLevelOf(binding_),
                          MemCmd::AtomicAdd, addr, delta, &v);
    co_return v;
}

Task<>
EngineCtx::loadMulti(const std::vector<Addr> &addrs,
                     std::vector<std::uint64_t> *out)
{
    if (out)
        out->assign(addrs.size(), 0);
    Join join(eq());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        join.add();
        spawn(portedAccess(engine_, callbackLevelOf(binding_),
                           MemCmd::Load, addrs[i], 0,
                           out ? &(*out)[i] : nullptr),
              join.completion());
    }
    co_await join.wait();
}

Task<>
EngineCtx::streamLoadMulti(const std::vector<Addr> &addrs,
                           std::vector<std::uint64_t> *out)
{
    if (out)
        out->assign(addrs.size(), 0);
    Join join(eq());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        join.add();
        spawn(portedAccess(engine_, callbackLevelOf(binding_),
                           MemCmd::Load, addrs[i], 0,
                           out ? &(*out)[i] : nullptr, false, true),
              join.completion());
    }
    co_await join.wait();
}

Task<>
EngineCtx::storeMulti(
    const std::vector<std::pair<Addr, std::uint64_t>> &writes)
{
    Join join(eq());
    for (const auto &[addr, value] : writes) {
        join.add();
        spawn(portedAccess(engine_, callbackLevelOf(binding_),
                           MemCmd::Store, addr, value, nullptr),
              join.completion());
    }
    co_await join.wait();
}

Task<>
EngineCtx::streamStoreMulti(
    const std::vector<std::pair<Addr, std::uint64_t>> &writes)
{
    Join join(eq());
    for (const auto &[addr, value] : writes) {
        join.add();
        spawn(portedAccess(engine_, callbackLevelOf(binding_),
                           MemCmd::Store, addr, value, nullptr, true),
              join.completion());
    }
    co_await join.wait();
}

Task<>
EngineCtx::compute(unsigned instrs, unsigned depth)
{
    if (instrs == 0)
        co_return;
    engine_.chargeCompute(instrs);
    const Tick lat = engine_.computeLatency(instrs, depth);
    if (lat > 0)
        co_await Delay{eq(), lat};
}

void
EngineCtx::interrupt(int core)
{
    engine_.raiseInterrupt(core, line_);
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

Engine::Engine(int tile, const EngineParams &params, MemorySystem &mem,
               Domains &dom, EventQueue &eq, StatsRegistry &stats,
               EnergyModel &energy, EngineCluster &cluster)
    : tile_(tile),
      params_(params),
      mem_(mem),
      dom_(dom),
      eq_(eq),
      stats_(stats),
      energy_(energy),
      cluster_(cluster),
      bufferSlots_(eq, params.callbackBuffer),
      fabricSlots_(eq, params.kind == EngineKind::Inorder
                           ? 1
                           : (params.kind == EngineKind::Ideal
                                  ? 1u << 20
                                  : params.maxConcurrent)),
      memPortSem_(eq, memPorts()),
      addrOrder_(eq),
      cbMiss_(stats.handle("engine.cb.miss")),
      cbEviction_(stats.handle("engine.cb.eviction")),
      cbWriteback_(stats.handle("engine.cb.writeback")),
      engineInstrs_(stats.handle("engine.instrs")),
      rtlbHits_(stats.handle("engine.rtlb.hits")),
      rtlbMisses_(stats.handle("engine.rtlb.misses")),
      bitstreamLoads_(stats.handle("engine.bitstream.loads")),
      missLatency_(stats.histogramHandle("engine.missLatency", 32, 16)),
      bufferWait_(stats.histogramHandle("engine.bufferWait", 16, 8)),
      hBdAddrWait_(stats.histogramHandle(
          "engine.breakdown.addr_wait", 32, 8, "cycles",
          "cycles a callback waits for same-address ordering")),
      hBdDispatch_(stats.histogramHandle(
          "engine.breakdown.dispatch", 32, 8, "cycles",
          "scheduler + fabric-slot cycles before the body starts")),
      hBdXlate_(stats.histogramHandle(
          "engine.breakdown.xlate", 32, 8, "cycles",
          "rTLB lookup + bitstream load cycles")),
      hBdBody_(stats.histogramHandle(
          "engine.breakdown.body", 32, 16, "cycles",
          "cycles spent executing the morph callback body")),
      hBdTotal_(stats.histogramHandle(
          "engine.breakdown.total", 32, 16, "cycles",
          "end-to-end callback latency, trigger to retire"))
{
}

unsigned
Engine::memPorts() const
{
    switch (params_.kind) {
      case EngineKind::Dataflow:
        return std::max(1u, params_.memPEs);
      case EngineKind::Inorder:
        return 1; // blocking loads
      case EngineKind::Ideal:
        return 1u << 20;
    }
    return 1;
}

Tick
Engine::computeLatency(unsigned instrs, unsigned depth) const
{
    switch (params_.kind) {
      case EngineKind::Ideal:
        return 0;
      case EngineKind::Dataflow: {
        // Latency-bound by the dataflow critical path, throughput-bound
        // by the integer PEs; SIMD ops count once per line.
        const unsigned d = std::max(depth, 1u);
        const Tick tput = divCeil(instrs, std::max(1u, params_.intPEs()));
        return std::max<Tick>(d, tput) * params_.peLatency;
      }
      case EngineKind::Inorder:
        // Single-issue pipeline refetching/decoding every instruction.
        return Tick(instrs) * 2;
    }
    return 0;
}

void
Engine::chargeCompute(unsigned instrs)
{
    *engineInstrs_ += instrs;
    energy_.engineInstrs(instrs, inorder());
}

Task<std::uint64_t>
Engine::memAccess(MemCmd cmd, Addr addr, std::uint64_t wdata,
                  int callback_level, bool no_fetch, bool use_once)
{
    AccessReq req;
    req.cmd = cmd;
    req.addr = addr;
    req.wdata = wdata;
    req.tile = tile_;
    req.fromEngine = true;
    req.callbackLevel = callback_level;
    req.noFetch = no_fetch;
    req.useOnce = use_once;
    co_return co_await mem_.access(req);
}

void
Engine::raiseInterrupt(int core, Addr line)
{
    // Delivery mutates the target core's pending-interrupt state, so the
    // event must execute in the core's domain. interruptLat covers the
    // cross-domain lookahead (checked at cluster construction).
    dom_.post(core, params_.interruptLat, [this, core, line]() {
        cluster_.deliverInterrupt(core, line);
    });
}

Tick
Engine::rtlbLookup(Addr line)
{
    energy_.tlbAccess();
    const std::uint64_t page = line / params_.pageBytes;
    auto it = rtlb_.find(page);
    if (it != rtlb_.end()) {
        it->second = ++rtlbClock_;
        ++*rtlbHits_;
        return params_.tlbLat;
    }
    ++*rtlbMisses_;
    if (rtlb_.size() >= params_.rtlbEntries) {
        auto lru = std::min_element(
            rtlb_.begin(), rtlb_.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        rtlb_.erase(lru);
    }
    rtlb_.emplace(page, ++rtlbClock_);
    return params_.rtlbMissLat;
}

Tick
Engine::bitstreamLookup(const MorphBinding &binding)
{
    auto it = bitstreams_.find(binding.id);
    if (it != bitstreams_.end()) {
        it->second = ++bitstreamClock_;
        return 0;
    }
    ++*bitstreamLoads_;
    if (bitstreams_.size() >= params_.bitstreamCacheEntries) {
        auto lru = std::min_element(
            bitstreams_.begin(), bitstreams_.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        bitstreams_.erase(lru);
    }
    bitstreams_.emplace(binding.id, ++bitstreamClock_);
    // One cycle per static instruction to stream the configuration in.
    return binding.morph ? binding.morph->traits().totalInstrs() : 0;
}

void
Engine::trigger(CallbackKind kind, Addr line, const MorphBinding &binding,
                bool dirty, LineData data, std::function<void()> done)
{
    Request req;
    req.kind = kind;
    req.line = line;
    req.binding = &binding;
    req.dirty = dirty;
    req.data = data;
    req.done = std::move(done);
    spawn(runCallback(std::move(req)));
}

Task<>
Engine::runCallback(Request req)
{
    const Tick enqueued = ctxNow(eq_);
    if (prof_)
        prof_->callbackEnqueued(tile_, enqueued);

    // Misses are latency-critical and hold a reserved MSHR (Sec. 5.2),
    // so on the dataflow/ideal engines they do not queue behind buffered
    // eviction work; evictions take a callback-buffer entry (waiting in
    // the cache's writeback buffer while full) and a fabric slot. The
    // in-order engine serializes everything — one thread context.
    const bool priority_miss =
        req.kind == CallbackKind::Miss && !inorder();
    Tick admission_wait = 0;
    if (!priority_miss) {
        co_await bufferSlots_.acquire();
        admission_wait = ctxNow(eq_) - enqueued;
        bufferWait_->sample(admission_wait);
    }

    // Callbacks on the same address execute in arrival order.
    Tick t0 = ctxNow(eq_);
    co_await addrOrder_.acquire(req.line);
    const Tick addr_wait = ctxNow(eq_) - t0;

    co_await Delay{eq_, params_.schedulerLat};
    Tick dispatch = params_.schedulerLat;

    const Tick xlate = rtlbLookup(req.line) + bitstreamLookup(*req.binding);
    if (xlate > 0)
        co_await Delay{eq_, xlate};

    if (!priority_miss) {
        t0 = ctxNow(eq_);
        co_await fabricSlots_.acquire();
        dispatch += ctxNow(eq_) - t0;
    }

    EngineCtx ctx(*this, *req.binding, req.kind, req.line, req.data,
                  req.dirty);
    Morph &morph = *req.binding->morph;
    const char *kind_name =
        req.kind == CallbackKind::Miss
            ? "onMiss"
            : (req.kind == CallbackKind::Writeback ? "onWriteback"
                                                   : "onEviction");
    TRACE(Engine, ctxNow(eq_), "tile %d runs %s(%#llx) for '%s'", tile_,
          kind_name, (unsigned long long)req.line,
          morph.traits().name.c_str());
    const Tick body_start = ctxNow(eq_);
    switch (req.kind) {
      case CallbackKind::Miss:
        ++*cbMiss_;
        co_await morph.onMiss(ctx);
        missLatency_->sample(ctxNow(eq_) - enqueued);
        break;
      case CallbackKind::Eviction:
        ++*cbEviction_;
        co_await morph.onEviction(ctx);
        break;
      case CallbackKind::Writeback:
        ++*cbWriteback_;
        co_await morph.onWriteback(ctx);
        break;
    }
    const Tick body = ctxNow(eq_) - body_start;

    if (!priority_miss) {
        fabricSlots_.release();
        bufferSlots_.release();
    }
    addrOrder_.release(req.line);
    hBdAddrWait_->sample(addr_wait);
    hBdDispatch_->sample(dispatch);
    hBdXlate_->sample(xlate);
    hBdBody_->sample(body);
    hBdTotal_->sample(ctxNow(eq_) - enqueued);
    if (prof_) {
        prof::CallbackRecord rec;
        rec.tile = tile_;
        rec.morph = morph.traits().name;
        rec.kind = static_cast<unsigned>(req.kind);
        rec.admissionWait = admission_wait;
        rec.addrWait = addr_wait;
        rec.dispatch = dispatch;
        rec.xlate = xlate;
        rec.body = body;
        rec.total = ctxNow(eq_) - enqueued;
        prof_->callbackRetired(rec, ctxNow(eq_));
    }
    if (trace::spanEnabled(trace::Flag::Engine)) {
        trace::ChromeTraceWriter &w = *trace::spanSink();
        w.ensureTrack(1, "engines", tile_, strprintf("tile%d", tile_));
        w.completeEvent(
            "engine", kind_name, 1, tile_, enqueued, ctxNow(eq_) - enqueued,
            strprintf("{\"addr\":\"%#llx\",\"morph\":\"%s\","
                      "\"addr_wait\":%llu,\"dispatch\":%llu,"
                      "\"xlate\":%llu,\"body\":%llu}",
                      (unsigned long long)req.line,
                      morph.traits().name.c_str(),
                      (unsigned long long)addr_wait,
                      (unsigned long long)dispatch,
                      (unsigned long long)xlate,
                      (unsigned long long)body));
    }
    TRACE(Engine, ctxNow(eq_), "tile %d retires callback on %#llx", tile_,
          (unsigned long long)req.line);
    req.done();
}

// ---------------------------------------------------------------------
// EngineCluster
// ---------------------------------------------------------------------

EngineCluster::EngineCluster(unsigned tiles, const EngineParams &params,
                             MemorySystem &mem, Domains &dom,
                             EventQueue &eq, StatsRegistry &stats,
                             EnergyModel &energy)
    : params_(params)
{
    panic_if(dom.active() && params.interruptLat < dom.quantum(),
             "interruptLat (%llu) below the shard lookahead quantum "
             "(%llu): interrupts could not cross domains",
             (unsigned long long)params.interruptLat,
             (unsigned long long)dom.quantum());
    engines_.reserve(tiles);
    for (unsigned t = 0; t < tiles; ++t) {
        engines_.push_back(std::make_unique<Engine>(
            static_cast<int>(t), params, mem, dom, eq, stats, energy,
            *this));
    }
}

void
EngineCluster::triggerMiss(int tile, Addr line_addr,
                           const MorphBinding &binding,
                           std::function<void()> done)
{
    engines_[tile]->trigger(CallbackKind::Miss, line_addr, binding, false,
                            LineData{}, std::move(done));
}

void
EngineCluster::triggerEviction(int tile, Addr line_addr,
                               const MorphBinding &binding, bool dirty,
                               LineData data, std::function<void()> done)
{
    engines_[tile]->trigger(dirty ? CallbackKind::Writeback
                                  : CallbackKind::Eviction,
                            line_addr, binding, dirty, std::move(data),
                            std::move(done));
}

} // namespace tako
