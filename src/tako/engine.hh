/**
 * @file
 * Near-cache engines (Sec. 5.3) and the callback execution model.
 *
 * One Engine per tile runs all callbacks for that tile's L2 and L3 bank.
 * An engine consists of:
 *   - a hardware scheduler with a callback buffer (default 8 entries);
 *     requests past capacity wait in the cache's writeback buffer
 *     (modeled as an admission queue with occupancy stats),
 *   - per-address ordering: callbacks on the same address execute in
 *     arrival order (the cache controller locks the address, Sec. 4.3),
 *   - a bitstream cache mapping Morphs to loaded fabric configurations,
 *   - a reverse TLB (rTLB) translating cache-tag physical addresses back
 *     to virtual for callbacks (Sec. 6),
 *   - an execution substrate: the 5x5 dataflow fabric of the paper, an
 *     in-order core (evaluated and rejected in Sec. 9), or an idealized
 *     0-cycle engine.
 *
 * Engines access memory through their coherent engine-L1d, which is
 * modeled inside MemorySystem (tile-clustered coherence).
 */

#ifndef TAKO_TAKO_ENGINE_HH
#define TAKO_TAKO_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "mem/lock_table.hh"
#include "mem/memory_system.hh"
#include "sim/domains.hh"
#include "tako/morph.hh"

namespace tako
{

enum class EngineKind
{
    Dataflow, ///< spatial dataflow fabric (the täkō design)
    Inorder,  ///< single-issue in-order core near the cache
    Ideal,    ///< unlimited, instantaneous, energy-free compute
};

struct EngineParams
{
    EngineKind kind = EngineKind::Dataflow;
    unsigned fabricDim = 5;   ///< fabricDim x fabricDim PEs
    unsigned memPEs = 10;     ///< PEs with L1d ports (Table 3)
    Tick peLatency = 1;
    unsigned callbackBuffer = 8;
    unsigned maxConcurrent = 8; ///< concurrent callbacks (tag matching)
    unsigned instrsPerPE = 16;
    unsigned tokensPerPE = 8;
    unsigned bitstreamCacheEntries = 4;
    Tick schedulerLat = 2; ///< enqueue + dispatch overhead

    unsigned rtlbEntries = 256;
    std::uint64_t pageBytes = 2 * 1024 * 1024; ///< 2MB pages (Sec. 9)
    Tick tlbLat = 1;
    Tick rtlbMissLat = 60;

    Tick interruptLat = 100; ///< user-space interrupt delivery

    unsigned totalPEs() const { return fabricDim * fabricDim; }
    unsigned intPEs() const { return totalPEs() - memPEs; }
};

class Engine;
class EngineCluster;

/**
 * Per-invocation context handed to callbacks: access to the triggering
 * line, engine memory ops, fabric compute, and interrupts.
 */
class EngineCtx
{
  public:
    EngineCtx(Engine &engine, const MorphBinding &binding,
              CallbackKind kind, Addr line, LineData captured, bool dirty);

    /** Triggering (virtual) line address. */
    Addr addr() const { return line_; }

    CallbackKind kind() const { return kind_; }
    bool dirty() const { return dirty_; }
    int tile() const;
    EventQueue &eq() const;
    const MorphBinding &binding() const { return binding_; }

    /**
     * Read word @p i of the triggering line. Misses see the line in the
     * adjacent data array (zeroed for phantom); evictions see the data
     * captured when the line left the cache.
     */
    std::uint64_t lineWord(unsigned i) const;

    /**
     * Write word @p i of the triggering line (onMiss fills the line).
     * Only valid for Miss callbacks: evicted lines are gone.
     */
    void setLineWord(unsigned i, std::uint64_t value);

    /** Captured contents for eviction/writeback callbacks. */
    const LineData &capturedLine() const { return captured_; }

    /** Coherent memory ops through the engine L1d. */
    Task<std::uint64_t> load(Addr addr);
    Task<> store(Addr addr, std::uint64_t value);
    Task<std::uint64_t> atomicAdd(Addr addr, std::uint64_t delta);

    /**
     * Issue independent loads, overlapped up to the engine's memory
     * ports (dataflow/ideal) or serialized (in-order). Results are
     * written to @p out (if non-null) in argument order.
     */
    Task<> loadMulti(const std::vector<Addr> &addrs,
                     std::vector<std::uint64_t> *out);

    /**
     * Use-once loads: data that is dead after this callback (gathers,
     * pointer chasing) inserts cold/distant at every level so it cannot
     * displace the engine's hot state (e.g., HATS's visited bitmap).
     */
    Task<> streamLoadMulti(const std::vector<Addr> &addrs,
                           std::vector<std::uint64_t> *out);

    /** Independent stores, overlapped like loadMulti. */
    Task<> storeMulti(const std::vector<std::pair<Addr, std::uint64_t>>
                          &writes);

    /**
     * Streaming (write-combining) stores for append buffers: misses
     * allocate without reading memory. This is how PHI's bins, HATS's
     * edge log, and the NVM journal stay at a fraction of a memory
     * access per callback (Sec. 8.1: 0.17 accesses per onWriteback).
     */
    Task<> streamStoreMulti(
        const std::vector<std::pair<Addr, std::uint64_t>> &writes);

    /** Charge fabric compute: @p instrs ops with critical path @p depth. */
    Task<> compute(unsigned instrs, unsigned depth);

    /** Raise a user-space interrupt on @p core (Sec. 8.4). */
    void interrupt(int core);

  private:
    Engine &engine_;
    const MorphBinding &binding_;
    CallbackKind kind_;
    Addr line_;
    LineData captured_;
    bool dirty_;
};

/** One near-cache engine (per tile). */
class Engine
{
  public:
    Engine(int tile, const EngineParams &params, MemorySystem &mem,
           Domains &dom, EventQueue &eq, StatsRegistry &stats,
           EnergyModel &energy, EngineCluster &cluster);

    int tile() const { return tile_; }
    const EngineParams &params() const { return params_; }
    EventQueue &eq() const { return eq_; }
    MemorySystem &mem() const { return mem_; }

    /** Enqueue a callback request; `done` runs when it retires. */
    void trigger(CallbackKind kind, Addr line, const MorphBinding &binding,
                 bool dirty, LineData data, std::function<void()> done);

    /** Fabric compute latency for (instrs, depth). */
    Tick computeLatency(unsigned instrs, unsigned depth) const;

    /** Engine memory port concurrency (loadMulti overlap). */
    unsigned memPorts() const;

    bool inorder() const { return params_.kind == EngineKind::Inorder; }

    void chargeCompute(unsigned instrs);

    Task<std::uint64_t> memAccess(MemCmd cmd, Addr addr,
                                  std::uint64_t wdata, int callback_level,
                                  bool no_fetch = false,
                                  bool use_once = false);

    Semaphore &memPortSem() { return memPortSem_; }

    void raiseInterrupt(int core, Addr line);

    /** takoprof: observe callback lifecycle; null when profiling is off. */
    void setProfiler(prof::Profiler *p) { prof_ = p; }

  private:
    struct Request
    {
        CallbackKind kind;
        Addr line;
        const MorphBinding *binding;
        bool dirty;
        LineData data;
        std::function<void()> done;
    };

    /** Full lifecycle of one callback (detached coroutine). */
    Task<> runCallback(Request req);

    /** rTLB lookup; returns added latency. */
    Tick rtlbLookup(Addr line);

    /** Bitstream cache lookup; returns load latency (0 on hit). */
    Tick bitstreamLookup(const MorphBinding &binding);

    int tile_;
    EngineParams params_;
    MemorySystem &mem_;
    Domains &dom_;
    EventQueue &eq_;
    StatsRegistry &stats_;
    EnergyModel &energy_;
    EngineCluster &cluster_;

    prof::Profiler *prof_ = nullptr;

    Semaphore bufferSlots_;  ///< callback buffer entries
    Semaphore fabricSlots_;  ///< concurrent callbacks on the fabric
    Semaphore memPortSem_;   ///< memory PEs
    LineLockTable addrOrder_; ///< per-address callback ordering

    // rTLB: page -> lastUse (LRU). Ordered (takolint D1): the victim
    // scan iterates, and hash order would decide lastUse ties.
    std::map<std::uint64_t, std::uint64_t> rtlb_;
    std::uint64_t rtlbClock_ = 0;

    // Bitstream cache: morph id -> lastUse (LRU). Ordered, same as rtlb_.
    std::map<std::uint32_t, std::uint64_t> bitstreams_;
    std::uint64_t bitstreamClock_ = 0;

    Counter *cbMiss_;
    Counter *cbEviction_;
    Counter *cbWriteback_;
    Counter *engineInstrs_;
    Counter *rtlbHits_;
    Counter *rtlbMisses_;
    Counter *bitstreamLoads_;
    Histogram *missLatency_;
    Histogram *bufferWait_;
    Histogram *hBdAddrWait_;
    Histogram *hBdDispatch_;
    Histogram *hBdXlate_;
    Histogram *hBdBody_;
    Histogram *hBdTotal_;
};

/**
 * All engines of the CMP; implements the CallbackSink the memory
 * hierarchy triggers into, and routes interrupts back to cores.
 */
class EngineCluster : public CallbackSink
{
  public:
    using InterruptHandler = std::function<void(int core, Addr line)>;

    EngineCluster(unsigned tiles, const EngineParams &params,
                  MemorySystem &mem, Domains &dom, EventQueue &eq,
                  StatsRegistry &stats, EnergyModel &energy);

    Engine &engine(int tile) { return *engines_[tile]; }
    const EngineParams &params() const { return params_; }

    void triggerMiss(int tile, Addr line_addr, const MorphBinding &binding,
                     std::function<void()> done) override;

    void triggerEviction(int tile, Addr line_addr,
                         const MorphBinding &binding, bool dirty,
                         LineData data,
                         std::function<void()> done) override;

    void setInterruptHandler(InterruptHandler h)
    {
        interruptHandler_ = std::move(h);
    }

    void
    deliverInterrupt(int core, Addr line)
    {
        if (interruptHandler_)
            interruptHandler_(core, line);
    }

    void
    setProfiler(prof::Profiler *p)
    {
        for (auto &e : engines_)
            e->setProfiler(p);
    }

  private:
    EngineParams params_;
    std::vector<std::unique_ptr<Engine>> engines_;
    InterruptHandler interruptHandler_;
};

} // namespace tako

#endif // TAKO_TAKO_ENGINE_HH
