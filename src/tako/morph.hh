/**
 * @file
 * The täkō programming interface: Morph objects and callbacks (Sec. 4).
 *
 * A Morph groups the data and methods of one polymorphic cache hierarchy
 * instance. Software subclasses Morph, overrides the callbacks it needs
 * (declared in MorphTraits), and registers the Morph over a phantom or
 * real address range at PRIVATE (L2) or SHARED (L3).
 *
 * Callbacks are coroutines executing on the tile's engine. They access
 * the triggering line directly (it sits in the adjacent data array),
 * reach other memory through the engine's coherent L1d, and charge their
 * compute to the dataflow-fabric timing model via EngineCtx::compute().
 * As in the paper's own evaluation, callback code is written in C++;
 * each callback carries a KernelDesc describing its static dataflow
 * footprint (instruction count and critical-path depth), which the
 * fabric model uses for bitstream loading and compute latency.
 */

#ifndef TAKO_TAKO_MORPH_HH
#define TAKO_TAKO_MORPH_HH

#include <string>

#include "mem/morph_types.hh"
#include "sim/task.hh"

namespace tako
{

class EngineCtx;

/** Static dataflow footprint of one callback. */
struct KernelDesc
{
    unsigned instrs = 0; ///< static instructions mapped onto the fabric
    unsigned depth = 0;  ///< dataflow critical-path depth (ops)
};

/** Which callbacks a Morph implements, plus their kernels. */
struct MorphTraits
{
    std::string name = "morph";
    bool hasMiss = false;
    bool hasEviction = false;
    bool hasWriteback = false;
    KernelDesc missKernel{};
    KernelDesc evictionKernel{};
    KernelDesc writebackKernel{};

    /** Total static instructions (bitstream size, Table 2). */
    unsigned
    totalInstrs() const
    {
        return missKernel.instrs + evictionKernel.instrs +
               writebackKernel.instrs;
    }
};

/**
 * Base class for polymorphic cache hierarchies. Subclasses override the
 * callbacks declared in their traits. Default implementations panic: the
 * engine only invokes callbacks the traits advertise.
 */
class Morph
{
  public:
    explicit Morph(MorphTraits traits) : traits_(std::move(traits)) {}
    virtual ~Morph() = default;

    Morph(const Morph &) = delete;
    Morph &operator=(const Morph &) = delete;

    const MorphTraits &traits() const { return traits_; }

    /**
     * Invoked on a miss to a registered line. For phantom ranges the
     * cache controller has allocated and zeroed the line; the callback
     * generates its data (Table 1). Runs on the critical path.
     */
    virtual Task<> onMiss(EngineCtx &ctx);

    /** Invoked when a clean registered line is evicted (off-path). */
    virtual Task<> onEviction(EngineCtx &ctx);

    /** Invoked when a dirty registered line is evicted (off-path). */
    virtual Task<> onWriteback(EngineCtx &ctx);

  private:
    MorphTraits traits_;
};

} // namespace tako

#endif // TAKO_TAKO_MORPH_HH
