/**
 * @file
 * Morph registration (Sec. 4.1-4.2) and address-space management.
 *
 * The registry plays the role of the paper's OS support plus the TLB
 * morph bits: it tracks which address ranges have a Morph registered
 * (at most one per address), allocates phantom ranges from a reserved
 * region at the top of the address space, and resolves addresses to
 * bindings on behalf of the cache controllers.
 *
 * register/unregister semantics follow the paper: registering over real
 * addresses first flushes the range from the caches (plain, no
 * callbacks — the Morph is not yet in effect); unregistering flushes
 * with callbacks (the Morph is still in effect) and then removes the
 * binding and de-allocates phantom ranges.
 *
 * Decomposition: like a hardware rTLB, the resolve tables are
 * replicated per tile. Master state (the authoritative interval map,
 * phantom bump allocator, id counter) is homed at tile 0's domain;
 * every mutation hops there, updates the master, and broadcasts one
 * apply message per tile — the same number of messages in the same
 * stream order at every shard count, so each tile's view changes at a
 * partition-invariant point in the merged event order. Lookups touch
 * only the executing tile's replica (no locks, no sharing).
 */

#ifndef TAKO_TAKO_REGISTRY_HH
#define TAKO_TAKO_REGISTRY_HH

#include <deque>
#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/domains.hh"
#include "sim/interval_map.hh"
#include "tako/morph.hh"

namespace tako
{

class MorphRegistry : public MorphResolver
{
  public:
    /** Phantom ranges live at and above this address. */
    static constexpr Addr phantomBase = Addr(1) << 46;

    /** Cost of a register/unregister syscall + TLB shootdown. */
    static constexpr Tick registrationLat = 500;

    MorphRegistry(MemorySystem &mem, Domains &dom, EventQueue &eq)
        : mem_(mem), dom_(dom), eq_(eq), views_(dom.tiles())
    {
        panic_if(registrationLat < 2 * dom_.quantum(),
                 "registrationLat must cover the tile-0 round trip");
        mem_.setMorphResolver(this);
    }

    /**
     * Allocate a phantom range of @p size bytes and register @p morph
     * over it. @p tile names the owning L2 for PRIVATE registrations.
     */
    Task<const MorphBinding *> registerPhantom(Morph &morph,
                                               MorphLevel level,
                                               std::uint64_t size,
                                               int tile);

    /** Register @p morph over existing data [base, base+size). */
    Task<const MorphBinding *> registerReal(Morph &morph, MorphLevel level,
                                            Addr base, std::uint64_t size,
                                            int tile);

    /** Flush the Morph's cached data, waiting for callbacks (Sec. 4.4). */
    Task<> flushData(const MorphBinding *binding);

    /** Flush (with callbacks), then remove the registration. */
    Task<> unregister(const MorphBinding *binding);

    // MorphResolver interface. Lookups consult the replica of the tile
    // the current event executes at (system-stream contexts — pre-run
    // setup, tests — use tile 0's).
    const MorphBinding *
    resolve(Addr addr) const override
    {
        const auto *e = views_[viewIndex()].map.find(addr);
        return e ? e->value : nullptr;
    }

    bool
    isPhantomAddr(Addr addr) const override
    {
        return addr >= phantomBase;
    }

    std::uint64_t
    generation() const override
    {
        return views_[viewIndex()].gen;
    }

    std::size_t numRegistered() const { return master_.size(); }

  private:
    /** One tile's rTLB replica; written only by apply messages executing
     *  at that tile, read only by events executing there. */
    struct alignas(64) TileView
    {
        IntervalMap<const MorphBinding *> map;
        std::uint64_t gen = 0;
    };

    std::size_t
    viewIndex() const
    {
        return static_cast<std::size_t>(dom_.ctxTile(0));
    }

    /** At tile 0: build the binding, update the master map, broadcast
     *  per-tile applies. Returns the stable binding pointer. */
    const MorphBinding *insert(Morph &morph, MorphLevel level, Addr base,
                               std::uint64_t size, bool phantom, int tile);

    MemorySystem &mem_;
    Domains &dom_;
    EventQueue &eq_;

    // Master state: touched only by events executing at tile 0.
    IntervalMap<const MorphBinding *> master_;
    Addr nextPhantom_ = phantomBase;
    std::uint32_t nextId_ = 1;

    /** Binding storage; std::deque so pointers stay stable while other
     *  domains read bindings published through their replicas. */
    std::deque<MorphBinding> storage_;

    std::vector<TileView> views_;
};

} // namespace tako

#endif // TAKO_TAKO_REGISTRY_HH
