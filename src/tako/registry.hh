/**
 * @file
 * Morph registration (Sec. 4.1-4.2) and address-space management.
 *
 * The registry plays the role of the paper's OS support plus the TLB
 * morph bits: it tracks which address ranges have a Morph registered
 * (at most one per address), allocates phantom ranges from a reserved
 * region at the top of the address space, and resolves addresses to
 * bindings on behalf of the cache controllers.
 *
 * register/unregister semantics follow the paper: registering over real
 * addresses first flushes the range from the caches (plain, no
 * callbacks — the Morph is not yet in effect); unregistering flushes
 * with callbacks (the Morph is still in effect) and then removes the
 * binding and de-allocates phantom ranges.
 */

#ifndef TAKO_TAKO_REGISTRY_HH
#define TAKO_TAKO_REGISTRY_HH

#include <memory>

#include "mem/memory_system.hh"
#include "sim/interval_map.hh"
#include "tako/morph.hh"

namespace tako
{

class MorphRegistry : public MorphResolver
{
  public:
    /** Phantom ranges live at and above this address. */
    static constexpr Addr phantomBase = Addr(1) << 46;

    /** Cost of a register/unregister syscall + TLB shootdown. */
    static constexpr Tick registrationLat = 500;

    MorphRegistry(MemorySystem &mem, EventQueue &eq) : mem_(mem), eq_(eq)
    {
        mem_.setMorphResolver(this);
    }

    /**
     * Allocate a phantom range of @p size bytes and register @p morph
     * over it. @p tile names the owning L2 for PRIVATE registrations.
     */
    Task<const MorphBinding *> registerPhantom(Morph &morph,
                                               MorphLevel level,
                                               std::uint64_t size,
                                               int tile);

    /** Register @p morph over existing data [base, base+size). */
    Task<const MorphBinding *> registerReal(Morph &morph, MorphLevel level,
                                            Addr base, std::uint64_t size,
                                            int tile);

    /** Flush the Morph's cached data, waiting for callbacks (Sec. 4.4). */
    Task<> flushData(const MorphBinding *binding);

    /** Flush (with callbacks), then remove the registration. */
    Task<> unregister(const MorphBinding *binding);

    // MorphResolver interface.
    const MorphBinding *
    resolve(Addr addr) const override
    {
        const auto *e = map_.find(addr);
        return e ? &e->value : nullptr;
    }

    bool
    isPhantomAddr(Addr addr) const override
    {
        return addr >= phantomBase;
    }

    std::uint64_t generation() const override { return gen_; }

    std::size_t numRegistered() const { return map_.size(); }

  private:
    const MorphBinding *insert(Morph &morph, MorphLevel level, Addr base,
                               std::uint64_t size, bool phantom, int tile);

    MemorySystem &mem_;
    EventQueue &eq_;
    IntervalMap<MorphBinding> map_;
    Addr nextPhantom_ = phantomBase;
    std::uint32_t nextId_ = 1;
    std::uint64_t gen_ = 0;
};

} // namespace tako

#endif // TAKO_TAKO_REGISTRY_HH
