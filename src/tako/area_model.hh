/**
 * @file
 * Hardware-overhead model reproducing Table 2 of the paper: state added
 * per L3 bank by täkō, as a fraction of the bank's data capacity.
 */

#ifndef TAKO_TAKO_AREA_MODEL_HH
#define TAKO_TAKO_AREA_MODEL_HH

#include <cstdint>
#include <ostream>

#include "mem/memory_system.hh"
#include "tako/engine.hh"

namespace tako
{

struct AreaReport
{
    double l3TagBytes;
    double engineSramBytes; ///< engine L1d + TLB + rTLB
    double callbackBufferBytes;
    double tokenStoreBytes;
    double instrMemoryBytes;
    double totalBytes;
    double l3BankBytes;

    double
    overheadFraction() const
    {
        return totalBytes / l3BankBytes;
    }
};

/** Compute Table 2 from the configured parameters. */
inline AreaReport
computeAreaReport(const MemParams &mem, const EngineParams &eng)
{
    AreaReport r{};
    // L3 tags: 1 morph bit per line.
    const double l3_lines = static_cast<double>(mem.l3BankSize) / lineBytes;
    r.l3TagBytes = l3_lines / 8.0;
    // Engine L1d + TLB + rTLB (Table 2 charges 8KB + 2KB + 2KB).
    const double tlb_bytes = 2 * 1024;
    const double rtlb_bytes =
        static_cast<double>(eng.rtlbEntries) * 8.0; // ~8B per entry
    r.engineSramBytes = static_cast<double>(mem.engL1Size) + tlb_bytes +
                        rtlb_bytes;
    r.callbackBufferBytes =
        static_cast<double>(eng.callbackBuffer) * lineBytes;
    r.tokenStoreBytes = static_cast<double>(eng.totalPEs()) *
                        eng.tokensPerPE * lineBytes;
    r.instrMemoryBytes = static_cast<double>(eng.totalPEs()) *
                         eng.instrsPerPE * 4.0;
    r.totalBytes = r.l3TagBytes + r.engineSramBytes +
                   r.callbackBufferBytes + r.tokenStoreBytes +
                   r.instrMemoryBytes;
    r.l3BankBytes = static_cast<double>(mem.l3BankSize);
    return r;
}

inline void
printAreaReport(std::ostream &os, const AreaReport &r)
{
    auto kb = [](double b) { return b / 1024.0; };
    os << "L3 tags (morph bits)      " << kb(r.l3TagBytes) << " KB\n"
       << "Engine L1d, TLB, rTLB     " << kb(r.engineSramBytes) << " KB\n"
       << "Callback buffer           " << kb(r.callbackBufferBytes)
       << " KB\n"
       << "Token store               " << kb(r.tokenStoreBytes) << " KB\n"
       << "Instruction memory        " << kb(r.instrMemoryBytes) << " KB\n"
       << "Total per L3 bank         " << kb(r.totalBytes) << " KB / "
       << kb(r.l3BankBytes) << " KB = "
       << r.overheadFraction() * 100.0 << "%\n";
}

} // namespace tako

#endif // TAKO_TAKO_AREA_MODEL_HH
