/**
 * @file
 * Core model and the guest-thread API.
 *
 * Cores execute guest programs written as coroutines over the Guest API.
 * Rather than model a full out-of-order pipeline, the core captures the
 * three OOO properties the paper's results depend on (Secs. 7, 9):
 *
 *  - issue width: exec(n) retires n instructions at issueWidth/cycle;
 *  - memory-level parallelism: loadMulti() overlaps independent loads up
 *    to the outstanding-load window (the ROB/MSHR bound); plain load()
 *    is a dependent load and blocks;
 *  - branch mispredictions: mispredict() charges the flush penalty.
 *
 * Remote memory operations (rmoAdd) model the relaxed atomics PHI pushes
 * through the hierarchy (Sec. 8.1): fire-and-forget, bounded by a store
 * buffer.
 */

#ifndef TAKO_CORE_CORE_HH
#define TAKO_CORE_CORE_HH

#include <functional>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/random.hh"
#include "tako/registry.hh"

namespace tako
{

struct CoreParams
{
    unsigned issueWidth = 3;          ///< Goldmont: 3-wide
    unsigned maxOutstandingLoads = 10; ///< MLP window
    Tick mispredictPenalty = 12;
    unsigned storeBufferEntries = 16; ///< outstanding RMOs/stores
};

class Core;

/** The software-visible API guest threads program against. */
class Guest
{
  public:
    explicit Guest(Core &core) : core_(core) {}

    int id() const;
    EventQueue &eq() const;
    Tick now() const;
    MemorySystem &mem() const;
    Rng &rng();

    /** Retire @p instrs non-memory instructions. */
    Task<> exec(std::uint64_t instrs);

    /** Dependent 8-byte load; blocks until the value returns. */
    Task<std::uint64_t> load(Addr addr);

    /** 8-byte store (write-allocate). */
    Task<> store(Addr addr, std::uint64_t value);

    /** Local atomic fetch-add (LL/SC class); returns the old value. */
    Task<std::uint64_t> atomicAdd(Addr addr, std::uint64_t delta);

    /** Local atomic exchange; returns the old value. */
    Task<std::uint64_t> atomicSwap(Addr addr, std::uint64_t value);

    /**
     * Independent loads overlapped up to the MLP window; results land
     * in @p out (if non-null) in argument order.
     */
    Task<> loadMulti(const std::vector<Addr> &addrs,
                     std::vector<std::uint64_t> *out);

    /**
     * Use-once (non-temporal) loads for streaming reads (bin drains,
     * log replays): fills insert near eviction so the stream does not
     * displace the resident working set.
     */
    Task<> streamLoadMulti(const std::vector<Addr> &addrs,
                           std::vector<std::uint64_t> *out);

    /** Independent stores overlapped like loadMulti. */
    Task<> storeMulti(
        const std::vector<std::pair<Addr, std::uint64_t>> &writes);

    /**
     * Streaming (non-temporal) stores for sequential append buffers:
     * misses allocate without reading memory.
     */
    Task<> streamStoreMulti(
        const std::vector<std::pair<Addr, std::uint64_t>> &writes);

    /** Independent local atomic adds overlapped like loadMulti. */
    Task<> atomicAddMulti(
        const std::vector<std::pair<Addr, std::uint64_t>> &adds);

    /**
     * Independent atomic exchanges (all writing @p value), overlapped
     * like loadMulti; old values land in @p out.
     */
    Task<> atomicSwapMulti(const std::vector<Addr> &addrs,
                           std::uint64_t value,
                           std::vector<std::uint64_t> *out);

    /**
     * Relaxed remote atomic add (RMO, Sec. 8.1): issues and returns;
     * completion is bounded by the store buffer. Use rmoDrain() as the
     * fence.
     */
    Task<> rmoAdd(Addr addr, std::uint64_t delta);

    /** Wait for all outstanding RMOs from this core. */
    Task<> rmoDrain();

    /** Charge a branch misprediction. */
    Task<> mispredict();

    // --- täkō API (Fig. 8) -------------------------------------------
    Task<const MorphBinding *> registerPhantom(Morph &morph,
                                               MorphLevel level,
                                               std::uint64_t size);
    Task<const MorphBinding *> registerReal(Morph &morph, MorphLevel level,
                                            Addr base, std::uint64_t size);
    Task<> flushData(const MorphBinding *binding);
    Task<> unregister(const MorphBinding *binding);

    /** Interrupts delivered to this core since the last query. */
    std::uint64_t takeInterrupts();
    std::uint64_t interruptsSeen() const;

  private:
    Core &core_;
};

class Core
{
  public:
    Core(int id, const CoreParams &params, MemorySystem &mem,
         MorphRegistry &registry, EventQueue &eq, StatsRegistry &stats,
         EnergyModel &energy, std::uint64_t seed);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    int id() const { return id_; }
    const CoreParams &params() const { return params_; }
    EventQueue &eq() const { return eq_; }
    MemorySystem &mem() const { return mem_; }
    MorphRegistry &registry() const { return registry_; }
    Rng &rng() { return rng_; }
    Guest &guest() { return guest_; }

    /** Spawn @p fn as this core's guest thread. */
    void run(std::function<Task<>(Guest &)> fn);

    bool done() const { return running_ == 0; }
    unsigned running() const { return running_; }

    /** User-space interrupt delivery (side-channel defense, Sec. 8.4). */
    void postInterrupt(Addr line);

    std::uint64_t instrs() const
    {
        return static_cast<std::uint64_t>(myInstrs_.value());
    }

    // Guest-API implementation.
    Task<> exec(std::uint64_t instrs);
    Task<std::uint64_t> memOp(MemCmd cmd, Addr addr, std::uint64_t wdata,
                              bool no_fetch = false,
                              bool use_once = false);
    Task<> multiOp(MemCmd cmd, const std::vector<Addr> &addrs,
                   const std::vector<std::uint64_t> *wdata,
                   std::vector<std::uint64_t> *out, bool no_fetch = false,
                   bool use_once = false);
    Task<> rmoAdd(Addr addr, std::uint64_t delta);
    Task<> rmoDrain();
    Task<> mispredict();
    std::uint64_t
    takeInterrupts()
    {
        const auto n = pendingInterrupts_;
        pendingInterrupts_ = 0;
        return n;
    }
    std::uint64_t interruptsSeen() const { return interruptsSeen_; }

  private:
    Task<> rmoIssue(Addr addr, std::uint64_t delta);

    int id_;
    CoreParams params_;
    MemorySystem &mem_;
    MorphRegistry &registry_;
    EventQueue &eq_;
    EnergyModel &energy_;
    Rng rng_;
    Guest guest_;

    Semaphore loadWindow_;
    Semaphore storeBuffer_;
    Join rmoOutstanding_;

    unsigned running_ = 0;
    std::uint64_t execCarry_ = 0;
    std::uint64_t pendingInterrupts_ = 0;
    std::uint64_t interruptsSeen_ = 0;

    Counter &instrs_;
    Counter &myInstrs_;
    Counter &mispredicts_;
    Counter &interrupts_;
    Histogram &loadLatency_;
};

} // namespace tako

#endif // TAKO_CORE_CORE_HH
