#include "core/core.hh"

namespace tako
{

// ---------------------------------------------------------------------
// Guest (thin forwarding layer)
// ---------------------------------------------------------------------

int
Guest::id() const
{
    return core_.id();
}

EventQueue &
Guest::eq() const
{
    return core_.eq();
}

Tick
Guest::now() const
{
    return ctxNow(core_.eq());
}

MemorySystem &
Guest::mem() const
{
    return core_.mem();
}

Rng &
Guest::rng()
{
    return core_.rng();
}

Task<>
Guest::exec(std::uint64_t instrs)
{
    co_await core_.exec(instrs);
}

Task<std::uint64_t>
Guest::load(Addr addr)
{
    co_return co_await core_.memOp(MemCmd::Load, addr, 0);
}

Task<>
Guest::store(Addr addr, std::uint64_t value)
{
    co_await core_.memOp(MemCmd::Store, addr, value);
}

Task<std::uint64_t>
Guest::atomicAdd(Addr addr, std::uint64_t delta)
{
    co_return co_await core_.memOp(MemCmd::AtomicAdd, addr, delta);
}

Task<std::uint64_t>
Guest::atomicSwap(Addr addr, std::uint64_t value)
{
    co_return co_await core_.memOp(MemCmd::AtomicSwap, addr, value);
}

Task<>
Guest::loadMulti(const std::vector<Addr> &addrs,
                 std::vector<std::uint64_t> *out)
{
    co_await core_.multiOp(MemCmd::Load, addrs, nullptr, out);
}

Task<>
Guest::streamLoadMulti(const std::vector<Addr> &addrs,
                       std::vector<std::uint64_t> *out)
{
    co_await core_.multiOp(MemCmd::Load, addrs, nullptr, out, false,
                           true);
}

namespace
{

void
splitPairs(const std::vector<std::pair<Addr, std::uint64_t>> &pairs,
           std::vector<Addr> &addrs, std::vector<std::uint64_t> &data)
{
    addrs.reserve(pairs.size());
    data.reserve(pairs.size());
    for (const auto &[a, v] : pairs) {
        addrs.push_back(a);
        data.push_back(v);
    }
}

} // namespace

Task<>
Guest::storeMulti(const std::vector<std::pair<Addr, std::uint64_t>> &writes)
{
    std::vector<Addr> addrs;
    std::vector<std::uint64_t> data;
    splitPairs(writes, addrs, data);
    co_await core_.multiOp(MemCmd::Store, addrs, &data, nullptr);
}

Task<>
Guest::streamStoreMulti(
    const std::vector<std::pair<Addr, std::uint64_t>> &writes)
{
    std::vector<Addr> addrs;
    std::vector<std::uint64_t> data;
    splitPairs(writes, addrs, data);
    co_await core_.multiOp(MemCmd::Store, addrs, &data, nullptr, true);
}

Task<>
Guest::atomicAddMulti(
    const std::vector<std::pair<Addr, std::uint64_t>> &adds)
{
    std::vector<Addr> addrs;
    std::vector<std::uint64_t> data;
    splitPairs(adds, addrs, data);
    co_await core_.multiOp(MemCmd::AtomicAdd, addrs, &data, nullptr);
}

Task<>
Guest::atomicSwapMulti(const std::vector<Addr> &addrs,
                       std::uint64_t value,
                       std::vector<std::uint64_t> *out)
{
    std::vector<std::uint64_t> data(addrs.size(), value);
    co_await core_.multiOp(MemCmd::AtomicSwap, addrs, &data, out);
}

Task<>
Guest::rmoAdd(Addr addr, std::uint64_t delta)
{
    co_await core_.rmoAdd(addr, delta);
}

Task<>
Guest::rmoDrain()
{
    co_await core_.rmoDrain();
}

Task<>
Guest::mispredict()
{
    co_await core_.mispredict();
}

Task<const MorphBinding *>
Guest::registerPhantom(Morph &morph, MorphLevel level, std::uint64_t size)
{
    co_return co_await core_.registry().registerPhantom(morph, level, size,
                                                        core_.id());
}

Task<const MorphBinding *>
Guest::registerReal(Morph &morph, MorphLevel level, Addr base,
                    std::uint64_t size)
{
    co_return co_await core_.registry().registerReal(morph, level, base,
                                                     size, core_.id());
}

Task<>
Guest::flushData(const MorphBinding *binding)
{
    co_await core_.registry().flushData(binding);
}

Task<>
Guest::unregister(const MorphBinding *binding)
{
    co_await core_.registry().unregister(binding);
}

std::uint64_t
Guest::takeInterrupts()
{
    return core_.takeInterrupts();
}

std::uint64_t
Guest::interruptsSeen() const
{
    return core_.interruptsSeen();
}

// ---------------------------------------------------------------------
// Core
// ---------------------------------------------------------------------

Core::Core(int id, const CoreParams &params, MemorySystem &mem,
           MorphRegistry &registry, EventQueue &eq, StatsRegistry &stats,
           EnergyModel &energy, std::uint64_t seed)
    : id_(id),
      params_(params),
      mem_(mem),
      registry_(registry),
      eq_(eq),
      energy_(energy),
      rng_(seed),
      guest_(*this),
      loadWindow_(eq, params.maxOutstandingLoads),
      storeBuffer_(eq, params.storeBufferEntries),
      rmoOutstanding_(eq),
      instrs_(stats.counter("core.instrs")),
      myInstrs_(stats.counter(strprintf("core%d.instrs", id))),
      mispredicts_(stats.counter("core.mispredicts")),
      interrupts_(stats.counter("core.interrupts")),
      loadLatency_(stats.histogram("core.loadLatency", 64, 8))
{
}

void
Core::run(std::function<Task<>(Guest &)> fn)
{
    ++running_;
    // Wrap so the guest function object stays alive in the wrapper frame.
    spawn(
        [](Core *core, std::function<Task<>(Guest &)> f) -> Task<> {
            co_await f(core->guest());
        }(this, std::move(fn)),
        [this]() { --running_; });
}

void
Core::postInterrupt(Addr)
{
    ++pendingInterrupts_;
    ++interruptsSeen_;
    ++interrupts_;
}

Task<>
Core::exec(std::uint64_t instrs)
{
    if (instrs == 0)
        co_return;
    instrs_ += static_cast<double>(instrs);
    myInstrs_ += static_cast<double>(instrs);
    energy_.coreInstrs(instrs);
    // Carry fractional issue slots across calls so that many short
    // exec() calls cost the same as one long one.
    execCarry_ += instrs;
    const Tick cycles = execCarry_ / params_.issueWidth;
    execCarry_ %= params_.issueWidth;
    if (cycles > 0)
        co_await Delay{eq_, cycles};
}

Task<std::uint64_t>
Core::memOp(MemCmd cmd, Addr addr, std::uint64_t wdata, bool no_fetch,
            bool use_once)
{
    instrs_ += 1;
    myInstrs_ += 1;
    energy_.coreInstrs(1);
    const Tick start = ctxNow(eq_);
    AccessReq req;
    req.cmd = cmd;
    req.addr = addr;
    req.wdata = wdata;
    req.tile = id_;
    req.noFetch = no_fetch;
    req.useOnce = use_once;
    const std::uint64_t v = co_await mem_.access(req);
    if (cmd == MemCmd::Load)
        loadLatency_.sample(ctxNow(eq_) - start);
    co_return v;
}

namespace
{

/** One overlapped load/store slot: bounded by the MLP window. */
Task<>
windowedOp(Core &core, Semaphore &window, MemCmd cmd, Addr addr,
           std::uint64_t wdata, std::uint64_t *out, bool no_fetch,
           bool use_once)
{
    co_await window.acquire();
    const std::uint64_t v = co_await core.memOp(cmd, addr, wdata,
                                                no_fetch, use_once);
    window.release();
    if (out)
        *out = v;
}

} // namespace

Task<>
Core::multiOp(MemCmd cmd, const std::vector<Addr> &addrs,
              const std::vector<std::uint64_t> *wdata,
              std::vector<std::uint64_t> *out, bool no_fetch,
              bool use_once)
{
    if (out)
        out->assign(addrs.size(), 0);
    Join join(eq_);
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        join.add();
        spawn(windowedOp(*this, loadWindow_, cmd, addrs[i],
                         wdata ? (*wdata)[i] : 0,
                         out ? &(*out)[i] : nullptr, no_fetch, use_once),
              join.completion());
    }
    co_await join.wait();
}

Task<>
Core::rmoIssue(Addr addr, std::uint64_t delta)
{
    co_await mem_.remoteAtomicAdd(id_, addr, delta);
    storeBuffer_.release();
    rmoOutstanding_.done();
}

Task<>
Core::rmoAdd(Addr addr, std::uint64_t delta)
{
    instrs_ += 1;
    myInstrs_ += 1;
    energy_.coreInstrs(1);
    // Issue occupies a store-buffer entry; the core continues once the
    // entry is claimed (relaxed ordering).
    co_await storeBuffer_.acquire();
    rmoOutstanding_.add();
    spawn(rmoIssue(addr, delta));
    // One-cycle issue slot.
    co_await Delay{eq_, 1};
}

Task<>
Core::rmoDrain()
{
    co_await rmoOutstanding_.wait();
}

Task<>
Core::mispredict()
{
    ++mispredicts_;
    co_await Delay{eq_, params_.mispredictPenalty};
}

} // namespace tako
