#include "trace/gen.hh"

#include <algorithm>

#include "sim/random.hh"
#include "trace/writer.hh"

namespace tako::trace
{

namespace
{

/** Simulated address-space plan: one disjoint slab per structure per
 *  tenant, far above the Arena base used by the synthetic workloads. */
constexpr Addr kvBucketBase = 0x2000'0000;
constexpr Addr kvValueBase = 0x4000'0000;
constexpr Addr scanNodeBase = 0x8000'0000;
constexpr Addr scanLeafBase = 0xa000'0000;
constexpr Addr embedTableBase = 0xc000'0000;
constexpr Addr embedDenseBase = 0xe000'0000;
constexpr Addr embedOutBase = 0xf000'0000;
constexpr Addr tenantStride = 0x0100'0000; ///< 16 MiB per tenant slab

/** Shared generator state: one clock, one rng, the tenant sampler. */
struct GenCtx
{
    GenCtx(const GenParams &p, TraceWriter &w)
        : params(p), writer(w), rng(p.seed),
          tenantZipf(p.tenants, p.theta)
    {
    }

    void
    emit(TraceOp op, Addr addr, std::uint32_t size, std::uint32_t tenant)
    {
        // Service time between records: a small deterministic jitter so
        // timestamp deltas look like an inter-arrival process rather
        // than a constant (and exercise the varint encoder).
        ts += 1 + rng.below(8);
        writer.append({addr, size, op, tenant,
                       params.timestamps ? ts : 0});
        ++emitted;
    }

    bool done() const { return emitted >= params.records; }

    const GenParams &params;
    TraceWriter &writer;
    Rng rng;
    ZipfianGenerator tenantZipf;
    std::uint64_t ts = 0;
    std::uint64_t emitted = 0;
};

/** Per-tenant key scatter: Zipf ranks map to distinct hot keys per
 *  tenant so tenants do not share a working set by construction. */
std::uint64_t
scatterKey(std::uint64_t rank, std::uint32_t tenant, std::uint64_t keys)
{
    return (rank * 2654435761ull + tenant * 0x9e3779b9ull) % keys;
}

/**
 * kv: each op is a hash-bucket probe (one word) then the value access;
 * storeFraction of ops are SETs that rewrite the value.
 */
class KvGen
{
  public:
    explicit KvGen(GenCtx &ctx)
        : ctx_(ctx), keyZipf_(ctx.params.keys, ctx.params.theta)
    {
    }

    void
    step()
    {
        const auto tenant =
            static_cast<std::uint32_t>(ctx_.tenantZipf(ctx_.rng));
        const std::uint64_t key = scatterKey(
            keyZipf_(ctx_.rng), tenant, ctx_.params.keys);
        const Addr slab = static_cast<Addr>(tenant) * tenantStride;
        // Bucket array: one 8-byte slot per key (chains elided).
        ctx_.emit(TraceOp::Load, kvBucketBase + slab + key * 8, 8,
                  tenant);
        if (ctx_.done())
            return;
        const std::uint32_t vbytes = ctx_.params.valueBytes;
        const Addr value = kvValueBase + slab + key * vbytes;
        const bool isStore = ctx_.rng.chance(ctx_.params.storeFraction);
        ctx_.emit(isStore ? TraceOp::Store : TraceOp::Load, value,
                  vbytes, tenant);
    }

  private:
    GenCtx &ctx_;
    ZipfianGenerator keyZipf_;
};

/**
 * scan: per-tenant pointer chase over a full-cycle LCG permutation of
 * the node array (next depends on current: a dependent-load stream),
 * with leafFraction of steps also reading a leaf payload.
 */
class ScanGen
{
  public:
    explicit ScanGen(GenCtx &ctx) : ctx_(ctx)
    {
        cursor_.resize(ctx.params.tenants);
        for (std::uint32_t t = 0; t < ctx.params.tenants; ++t)
            cursor_[t] = ctx_.rng.below(ctx.params.nodes);
    }

    void
    step()
    {
        const auto tenant =
            static_cast<std::uint32_t>(ctx_.tenantZipf(ctx_.rng));
        const std::uint64_t n = ctx_.params.nodes;
        // Full-period LCG mod a power of two: multiplier ≡ 1 (mod 4),
        // odd increment — visits every node before repeating.
        std::uint64_t &cur = cursor_[tenant];
        cur = (cur * 1103515245ull + 12345 + 2ull * tenant) % n;
        const Addr slab = static_cast<Addr>(tenant) * tenantStride;
        ctx_.emit(TraceOp::Load,
                  scanNodeBase + slab + cur * lineBytes, lineBytes,
                  tenant);
        if (ctx_.done())
            return;
        if (ctx_.rng.chance(ctx_.params.leafFraction)) {
            ctx_.emit(TraceOp::Load, scanLeafBase + slab + cur * 16, 16,
                      tenant);
        }
    }

  private:
    GenCtx &ctx_;
    std::vector<std::uint64_t> cursor_;
};

/**
 * embed: one inference = a batch of Zipf-hot row gathers from the
 * shared embedding table, a re-read of the tenant's dense working set,
 * and a streamed activation write.
 */
class EmbedGen
{
  public:
    explicit EmbedGen(GenCtx &ctx)
        : ctx_(ctx), rowZipf_(ctx.params.rows, ctx.params.theta)
    {
    }

    void
    step()
    {
        const auto tenant =
            static_cast<std::uint32_t>(ctx_.tenantZipf(ctx_.rng));
        const std::uint32_t rbytes = ctx_.params.rowBytes;
        for (std::uint32_t i = 0;
             i < ctx_.params.batch && !ctx_.done(); ++i) {
            const std::uint64_t row = rowZipf_(ctx_.rng);
            ctx_.emit(TraceOp::Load, embedTableBase + row * rbytes,
                      rbytes, tenant);
        }
        const Addr slab = static_cast<Addr>(tenant) * tenantStride;
        // Dense-layer weights: small, hot, re-read every inference.
        for (std::uint32_t i = 0; i < 4 && !ctx_.done(); ++i) {
            ctx_.emit(TraceOp::Load,
                      embedDenseBase + slab + i * lineBytes, lineBytes,
                      tenant);
        }
        if (!ctx_.done()) {
            out_ = (out_ + lineBytes) % tenantStride;
            ctx_.emit(TraceOp::StreamStore, embedOutBase + slab + out_,
                      lineBytes, tenant);
        }
    }

  private:
    GenCtx &ctx_;
    ZipfianGenerator rowZipf_;
    Addr out_ = 0;
};

} // namespace

const std::vector<std::string> &
genKinds()
{
    static const std::vector<std::string> kinds = {"kv", "scan", "embed",
                                                   "mix"};
    return kinds;
}

bool
generateTrace(const GenParams &params, TraceWriter &writer,
              std::string &err)
{
    if (std::find(genKinds().begin(), genKinds().end(), params.kind) ==
        genKinds().end()) {
        err = "unknown generator kind '" + params.kind + "'";
        return false;
    }
    if (params.records == 0 || params.tenants == 0) {
        err = "records and tenants must be nonzero";
        return false;
    }
    if (params.keys == 0 || params.rows == 0 || params.batch == 0 ||
        params.valueBytes == 0 || params.rowBytes == 0) {
        err = "kv/embed dimensions must be nonzero";
        return false;
    }
    if (!isPow2(params.nodes)) {
        err = "nodes must be a power of two (full-cycle permutation)";
        return false;
    }
    if (params.theta <= 0 || params.theta >= 1) {
        err = "theta must be in (0, 1)";
        return false;
    }

    GenCtx ctx(params, writer);
    KvGen kv(ctx);
    ScanGen scan(ctx);
    EmbedGen embed(ctx);
    if (params.kind == "mix") {
        // Tenant id mod 3 selects the class, so a mix trace carries all
        // three behaviors under one tenant population. Each step picks
        // the class via one tenant draw (put back: the class generators
        // draw their own tenant, preserving per-class skew).
        while (!ctx.done()) {
            switch (ctx.tenantZipf(ctx.rng) % 3) {
              case 0: kv.step(); break;
              case 1: scan.step(); break;
              default: embed.step(); break;
            }
        }
    } else if (params.kind == "kv") {
        while (!ctx.done())
            kv.step();
    } else if (params.kind == "scan") {
        while (!ctx.done())
            scan.step();
    } else {
        while (!ctx.done())
            embed.step();
    }
    return true;
}

} // namespace tako::trace
