/**
 * @file
 * takotrace-v1: the on-disk binary memory-trace format.
 *
 * A trace file is a stream of memory-access records compact enough to
 * hold billions of accesses and simple enough to decode at tens of
 * millions of records per second. The layout (all integers little-
 * endian; full byte-level spec in DESIGN.md Sec. 4.9):
 *
 *   FileHeader (32 bytes)
 *     char[8] magic        "takotrc1"
 *     u32     version      1
 *     u32     flags        bit 0: records carry timestamps
 *     u64     recordCount  total records in the file
 *     u64     chunkCount   number of chunks that follow
 *
 *   chunkCount x Chunk:
 *     ChunkHeader (24 bytes)
 *       u32 magic          0x314b4843 ("CHK1")
 *       u32 records        records encoded in this chunk
 *       u32 payloadBytes   encoded payload size in bytes
 *       u32 crc32          IEEE CRC-32 of the payload bytes
 *       u64 firstIndex     file-wide index of the chunk's first record
 *     payloadBytes of delta + LEB128 encoded records
 *
 * Record encoding. The per-chunk context (previous address, size,
 * tenant, timestamp) resets at every chunk boundary so chunks decode
 * independently and corruption is contained to one chunk. Each record:
 *
 *   head byte:  bits 0-2  op (TraceOp)
 *               bit  3    explicit size follows (else: previous size)
 *               bit  4    explicit tenant follows (else: previous)
 *               bit  5    timestamp delta follows (file flag required)
 *               bits 6-7  reserved, must be zero
 *   LEB128      zigzag(addr - prevAddr)
 *   [LEB128]    size in bytes                  (if bit 3)
 *   [LEB128]    tenant id                      (if bit 4)
 *   [LEB128]    ts - prevTs (ts non-decreasing) (if bit 5)
 *
 * Every structural violation — short file, bad magic, wrong version,
 * chunk overrun, CRC mismatch, record-count mismatch, reserved head
 * bits — is a hard decode error: corrupt or truncated traces fail
 * loudly, never silently replay a prefix.
 */

#ifndef TAKO_TRACE_FORMAT_HH
#define TAKO_TRACE_FORMAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tako::trace
{

/** Operation of one trace record, mirroring the Guest access kinds. */
enum class TraceOp : std::uint8_t
{
    Load = 0,
    Store = 1,
    StreamLoad = 2,  ///< use-once / non-temporal read
    StreamStore = 3, ///< no-fetch / write-combining store
    AtomicAdd = 4,
    AtomicSwap = 5,
};

constexpr unsigned numTraceOps = 6;

/** One decoded memory access. */
struct TraceRecord
{
    Addr addr = 0;
    std::uint32_t size = 8;   ///< bytes touched, starting at addr
    TraceOp op = TraceOp::Load;
    std::uint32_t tenant = 0; ///< origin stream (user/connection/thread)
    std::uint64_t ts = 0;     ///< optional capture timestamp (cycles)

    bool operator==(const TraceRecord &) const = default;
};

// ---- file constants ----------------------------------------------------

constexpr std::array<char, 8> traceMagic = {'t', 'a', 'k', 'o',
                                            't', 'r', 'c', '1'};
constexpr std::uint32_t traceVersion = 1;
constexpr std::uint32_t chunkMagic = 0x314b4843; // "CHK1"
constexpr std::uint32_t flagTimestamps = 1u << 0;
constexpr std::size_t fileHeaderBytes = 32;
constexpr std::size_t chunkHeaderBytes = 24;

/** Record-head-byte layout. */
constexpr std::uint8_t headOpMask = 0x07;
constexpr std::uint8_t headHasSize = 1u << 3;
constexpr std::uint8_t headHasTenant = 1u << 4;
constexpr std::uint8_t headHasTs = 1u << 5;
constexpr std::uint8_t headReserved = 0xc0;

// ---- LEB128 / zigzag ---------------------------------------------------

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * Decode one LEB128 value from [@p p, @p end). Advances @p p past the
 * value. Returns false (leaving @p out unspecified) on truncation or a
 * varint longer than 64 bits.
 */
inline bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &out)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    while (p != end && shift < 64) {
        const std::uint8_t byte = *p++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) {
            out = v;
            return true;
        }
        shift += 7;
    }
    return false;
}

constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

// ---- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) -------------------
//
// Matches zlib/binascii.crc32 so tools/validate_takotrace.py can verify
// chunks with the Python standard library.

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

inline constexpr std::array<std::uint32_t, 256> crcTable = makeCrcTable();

} // namespace detail

inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t len,
      std::uint32_t seed = 0)
{
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = detail::crcTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

/** Human-readable op name ("load", "store", ...). */
const char *traceOpName(TraceOp op);

} // namespace tako::trace

#endif // TAKO_TRACE_FORMAT_HH
