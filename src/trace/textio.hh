/**
 * @file
 * Text-trace ingest (Pin-style) and dump for takotrace.
 *
 * The accepted line grammar covers the common Pin memory-trace pintool
 * outputs plus optional takotrace extensions:
 *
 *   [#,;//...]                          comment / blank: skipped
 *   <op> <addr> [size] [tenant] [ts]
 *
 * where <op> is one of (case-insensitive):
 *   R, L, READ, LOAD          -> Load
 *   W, S, WRITE, STORE        -> Store
 *   SR, NTR, STREAMLOAD       -> StreamLoad
 *   SW, NTW, STREAMSTORE      -> StreamStore
 *   A, ADD, ATOMICADD         -> AtomicAdd
 *   X, XCHG, ATOMICSWAP       -> AtomicSwap
 *
 * and <addr> is hex (0x-prefixed or bare hex digits) or decimal; size,
 * tenant, and ts are decimal (size defaults to the previous record's,
 * initial 8). Fields beyond ts are rejected. A leading instruction
 * pointer column ("<ip>: R <addr> <size>", as emitted by Pin's pinatrace
 * example tool) is detected by the trailing colon and skipped.
 */

#ifndef TAKO_TRACE_TEXTIO_HH
#define TAKO_TRACE_TEXTIO_HH

#include <iosfwd>
#include <string>

#include "trace/format.hh"

namespace tako::trace
{

class TraceWriter;

/** Result of one text ingest. */
struct IngestResult
{
    std::uint64_t records = 0;   ///< records written
    std::uint64_t skipped = 0;   ///< comment/blank lines
    bool ok = false;
    std::string error;           ///< "<line>: message" on failure
};

/**
 * Parse one trace line into @p out. Returns 1 on a record, 0 on a
 * comment/blank line, -1 on a malformed line (@p err set). @p prevSize
 * supplies and receives the running default size.
 */
int parseTraceLine(const std::string &line, TraceRecord &out,
                   std::uint32_t &prevSize, std::string &err);

/**
 * Ingest the text trace @p in into @p writer (already open; caller
 * closes). Timestamps in the text are honored only if the writer was
 * opened with timestamps enabled. Stops at the first malformed line.
 */
IngestResult ingestText(std::istream &in, TraceWriter &writer);

/** Write @p rec as one canonical text line ("load 0x1000 8 0 42"). */
void formatTraceLine(std::ostream &os, const TraceRecord &rec,
                     bool timestamps);

} // namespace tako::trace

#endif // TAKO_TRACE_TEXTIO_HH
