/**
 * @file
 * mmap-backed takotrace-v1 decoder.
 *
 * open() maps the file read-only and walks the chunk directory once,
 * bounds-checking every header against the file size and the header's
 * record/chunk counts — a truncated or corrupt file is rejected before
 * a single record is decoded. Payload CRCs are verified lazily, when
 * iteration first enters each chunk, so opening a multi-gigabyte trace
 * stays O(chunks).
 *
 * Iteration is strictly forward (`next()`), with `rewind()` to restart;
 * any structural violation mid-stream sets a sticky error and ends
 * iteration. The mapping lives until close()/destruction — records are
 * decoded straight out of the map with no intermediate copy.
 */

#ifndef TAKO_TRACE_READER_HH
#define TAKO_TRACE_READER_HH

#include <string>
#include <vector>

#include "trace/format.hh"

namespace tako::trace
{

class TraceReader
{
  public:
    TraceReader() = default;
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Map @p path and validate header + chunk directory. On failure
     * returns false with error() set; the reader is then closed.
     */
    bool open(const std::string &path);

    /** Unmap. Outstanding record pointers are invalid afterwards. */
    void close();

    /**
     * Decode the next record into @p out. Returns false at end-of-trace
     * or on a decode error — distinguish with error().empty().
     */
    bool next(TraceRecord &out);

    /** Restart iteration from the first record. Keeps the mapping. */
    void rewind();

    bool isOpen() const { return data_ != nullptr; }
    const std::string &error() const { return error_; }
    std::uint64_t recordCount() const { return recordCount_; }
    std::uint64_t recordsRead() const { return recordsRead_; }
    bool hasTimestamps() const { return timestamps_; }
    std::uint64_t chunkCount() const { return chunks_.size(); }

  private:
    struct Chunk
    {
        std::size_t payloadOff = 0; ///< byte offset of the payload
        std::uint32_t payloadBytes = 0;
        std::uint32_t records = 0;
        std::uint32_t crc = 0;
        bool crcChecked = false;
    };

    /** Enter chunk @p idx: CRC-check (once) and reset decode state. */
    bool enterChunk(std::size_t idx);
    bool fail(const std::string &msg);

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;            ///< data_ is an mmap (vs. heap copy)
    std::vector<std::uint8_t> heap_; ///< fallback when mmap fails

    std::string error_;
    std::uint64_t recordCount_ = 0;
    bool timestamps_ = false;
    std::vector<Chunk> chunks_;

    // Cursor.
    std::size_t chunkIdx_ = 0;       ///< current chunk
    const std::uint8_t *cur_ = nullptr;
    const std::uint8_t *chunkEnd_ = nullptr;
    std::uint32_t chunkLeft_ = 0;    ///< records left in current chunk
    std::uint64_t recordsRead_ = 0;

    // Delta context (reset per chunk).
    Addr prevAddr_ = 0;
    std::uint32_t prevSize_ = 8;
    std::uint32_t prevTenant_ = 0;
    std::uint64_t prevTs_ = 0;
};

} // namespace tako::trace

#endif // TAKO_TRACE_READER_HH
