/**
 * @file
 * Synthetic production-shaped trace generators (the workload zoo).
 *
 * Each generator emits a deterministic record stream (pure function of
 * GenParams, including the seed) modeled on a production traffic class:
 *
 *   kv     key-value / cache-server traffic: Zipf-skewed tenants each
 *          issuing GET/SET over a Zipf-skewed key space, as a hash-
 *          bucket probe followed by a value access (the ROADMAP's
 *          millions-of-users scenario).
 *   scan   pointer-chase database index scans: per-tenant full-cycle
 *          permutation walks (dependent loads) with occasional leaf
 *          payload reads.
 *   embed  ML-inference embedding lookups: batched gathers of hot rows
 *          from a large embedding table, a small dense working set
 *          re-read every inference, and streamed activation writes.
 *   mix    all three classes multiplexed across the tenant population
 *          (tenant id mod 3 selects the class).
 *
 * Generators write through a TraceWriter so multi-hundred-million-record
 * streams never materialize in memory.
 */

#ifndef TAKO_TRACE_GEN_HH
#define TAKO_TRACE_GEN_HH

#include <string>
#include <vector>

#include "trace/format.hh"

namespace tako::trace
{

class TraceWriter;

struct GenParams
{
    std::string kind = "kv"; ///< kv | scan | embed | mix
    std::uint64_t records = 100'000; ///< records to emit (exact)
    std::uint32_t tenants = 8;
    std::uint64_t seed = 1;
    double theta = 0.99;     ///< Zipf skew for tenants and keys/rows

    // kv
    std::uint64_t keys = 1 << 16;  ///< keys per tenant
    std::uint32_t valueBytes = 128;
    double storeFraction = 0.10;   ///< SET fraction of kv ops

    // scan
    std::uint64_t nodes = 1 << 14; ///< index nodes per tenant (pow2)
    double leafFraction = 0.25;    ///< chance a step reads a leaf

    // embed
    std::uint64_t rows = 1 << 17;  ///< embedding-table rows (shared)
    std::uint32_t rowBytes = 256;
    std::uint32_t batch = 16;      ///< embedding gathers per inference

    bool timestamps = true;
};

/** Known generator kinds, for CLI validation / error text. */
const std::vector<std::string> &genKinds();

/**
 * Emit exactly params.records records into @p writer (already open with
 * matching Options.timestamps; caller closes). Returns false on invalid
 * params with @p err set.
 */
bool generateTrace(const GenParams &params, TraceWriter &writer,
                   std::string &err);

} // namespace tako::trace

#endif // TAKO_TRACE_GEN_HH
