#include "trace/reader.hh"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tako::trace
{

namespace
{

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           static_cast<std::uint64_t>(get32(p + 4)) << 32;
}

} // namespace

TraceReader::~TraceReader()
{
    close();
}

bool
TraceReader::fail(const std::string &msg)
{
    if (error_.empty())
        error_ = "takotrace read: " + msg;
    // End iteration immediately; the mapping stays for error reporting.
    cur_ = chunkEnd_ = nullptr;
    chunkLeft_ = 0;
    chunkIdx_ = chunks_.size();
    return false;
}

bool
TraceReader::open(const std::string &path)
{
    close();
    error_.clear();

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return fail("cannot stat '" + path + "'");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < fileHeaderBytes) {
        ::close(fd);
        return fail("'" + path + "' is shorter than a file header");
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t *>(map);
        mapped_ = true;
    } else {
        // mmap can fail on exotic filesystems; fall back to a copy.
        heap_.resize(size_);
        std::size_t got = 0;
        while (got < size_) {
            const ssize_t n =
                ::pread(fd, heap_.data() + got, size_ - got,
                        static_cast<off_t>(got));
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
        if (got != size_) {
            ::close(fd);
            heap_.clear();
            return fail("cannot read '" + path + "'");
        }
        data_ = heap_.data();
        mapped_ = false;
    }
    ::close(fd);

    // --- header ---------------------------------------------------------
    if (std::memcmp(data_, traceMagic.data(), traceMagic.size()) != 0) {
        const bool err = fail("'" + path + "': bad magic (not a "
                              "takotrace file)");
        close();
        return err;
    }
    const std::uint32_t version = get32(data_ + 8);
    if (version != traceVersion) {
        const bool err =
            fail("'" + path + "': format version " +
                 std::to_string(version) + " (this build reads v" +
                 std::to_string(traceVersion) + ")");
        close();
        return err;
    }
    const std::uint32_t flags = get32(data_ + 12);
    if (flags & ~flagTimestamps) {
        const bool err = fail("'" + path + "': unknown flag bits 0x" +
                              std::to_string(flags & ~flagTimestamps));
        close();
        return err;
    }
    timestamps_ = flags & flagTimestamps;
    recordCount_ = get64(data_ + 16);
    const std::uint64_t chunkCount = get64(data_ + 24);

    // --- chunk directory walk (headers only; CRCs checked lazily) -------
    std::size_t off = fileHeaderBytes;
    std::uint64_t records = 0;
    chunks_.reserve(static_cast<std::size_t>(chunkCount));
    for (std::uint64_t i = 0; i < chunkCount; ++i) {
        if (off + chunkHeaderBytes > size_) {
            const bool err = fail(
                "'" + path + "': truncated at chunk " +
                std::to_string(i) + " header (file ends early)");
            close();
            return err;
        }
        const std::uint8_t *h = data_ + off;
        if (get32(h) != chunkMagic) {
            const bool err = fail("'" + path + "': chunk " +
                                  std::to_string(i) + ": bad magic");
            close();
            return err;
        }
        Chunk c;
        c.records = get32(h + 4);
        c.payloadBytes = get32(h + 8);
        c.crc = get32(h + 12);
        const std::uint64_t firstIndex = get64(h + 16);
        c.payloadOff = off + chunkHeaderBytes;
        if (c.records == 0) {
            const bool err = fail("'" + path + "': chunk " +
                                  std::to_string(i) + ": empty chunk");
            close();
            return err;
        }
        if (firstIndex != records) {
            const bool err =
                fail("'" + path + "': chunk " + std::to_string(i) +
                     ": firstIndex " + std::to_string(firstIndex) +
                     " != running count " + std::to_string(records));
            close();
            return err;
        }
        if (c.payloadOff + c.payloadBytes > size_) {
            const bool err = fail(
                "'" + path + "': truncated in chunk " +
                std::to_string(i) + " payload (file ends early)");
            close();
            return err;
        }
        records += c.records;
        off = c.payloadOff + c.payloadBytes;
        chunks_.push_back(c);
    }
    if (off != size_) {
        const bool err =
            fail("'" + path + "': " + std::to_string(size_ - off) +
                 " trailing bytes after the last chunk");
        close();
        return err;
    }
    if (records != recordCount_) {
        const bool err = fail(
            "'" + path + "': header says " +
            std::to_string(recordCount_) + " records, chunks hold " +
            std::to_string(records) +
            (recordCount_ == 0 ? " (unclosed writer?)" : ""));
        close();
        return err;
    }

    rewind();
    return true;
}

void
TraceReader::close()
{
    if (data_ && mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    heap_.clear();
    heap_.shrink_to_fit();
    chunks_.clear();
    recordCount_ = 0;
    recordsRead_ = 0;
    timestamps_ = false;
    cur_ = chunkEnd_ = nullptr;
    chunkLeft_ = 0;
    chunkIdx_ = 0;
}

void
TraceReader::rewind()
{
    recordsRead_ = 0;
    chunkIdx_ = 0;
    cur_ = chunkEnd_ = nullptr;
    chunkLeft_ = 0;
    if (isOpen() && error_.empty() && !chunks_.empty())
        enterChunk(0);
}

bool
TraceReader::enterChunk(std::size_t idx)
{
    Chunk &c = chunks_[idx];
    if (!c.crcChecked) {
        const std::uint32_t got =
            crc32(data_ + c.payloadOff, c.payloadBytes);
        if (got != c.crc)
            return fail("chunk " + std::to_string(idx) +
                        ": CRC mismatch (stored " +
                        std::to_string(c.crc) + ", computed " +
                        std::to_string(got) + ")");
        c.crcChecked = true;
    }
    chunkIdx_ = idx;
    cur_ = data_ + c.payloadOff;
    chunkEnd_ = cur_ + c.payloadBytes;
    chunkLeft_ = c.records;
    prevAddr_ = 0;
    prevSize_ = 8;
    prevTenant_ = 0;
    prevTs_ = 0;
    return true;
}

bool
TraceReader::next(TraceRecord &out)
{
    while (chunkLeft_ == 0) {
        if (!cur_ || chunkIdx_ + 1 >= chunks_.size()) {
            if (cur_ && chunkIdx_ + 1 >= chunks_.size() &&
                cur_ != chunkEnd_)
                return fail("chunk " + std::to_string(chunkIdx_) +
                            ": trailing payload bytes after the last "
                            "record");
            cur_ = nullptr;
            return false; // clean end (or sticky error already set)
        }
        if (cur_ != chunkEnd_)
            return fail("chunk " + std::to_string(chunkIdx_) +
                        ": trailing payload bytes after the last "
                        "record");
        if (!enterChunk(chunkIdx_ + 1))
            return false;
    }

    const std::uint8_t *p = cur_;
    if (p == chunkEnd_)
        return fail("chunk " + std::to_string(chunkIdx_) +
                    ": payload ends mid-record");
    const std::uint8_t head = *p++;
    if (head & headReserved)
        return fail("chunk " + std::to_string(chunkIdx_) +
                    ": reserved head bits set");
    const unsigned opBits = head & headOpMask;
    if (opBits >= numTraceOps)
        return fail("chunk " + std::to_string(chunkIdx_) +
                    ": invalid op " + std::to_string(opBits));
    if ((head & headHasTs) && !timestamps_)
        return fail("chunk " + std::to_string(chunkIdx_) +
                    ": timestamp on a record of an untimestamped file");

    std::uint64_t v;
    if (!getVarint(p, chunkEnd_, v))
        return fail("chunk " + std::to_string(chunkIdx_) +
                    ": truncated address varint");
    prevAddr_ += static_cast<Addr>(zigzagDecode(v));
    if (head & headHasSize) {
        if (!getVarint(p, chunkEnd_, v) || v == 0 ||
            v > 0xffffffffull)
            return fail("chunk " + std::to_string(chunkIdx_) +
                        ": bad size varint");
        prevSize_ = static_cast<std::uint32_t>(v);
    }
    if (head & headHasTenant) {
        if (!getVarint(p, chunkEnd_, v) || v > 0xffffffffull)
            return fail("chunk " + std::to_string(chunkIdx_) +
                        ": bad tenant varint");
        prevTenant_ = static_cast<std::uint32_t>(v);
    }
    if (head & headHasTs) {
        if (!getVarint(p, chunkEnd_, v))
            return fail("chunk " + std::to_string(chunkIdx_) +
                        ": truncated timestamp varint");
        prevTs_ += v;
    }

    out.addr = prevAddr_;
    out.size = prevSize_;
    out.op = static_cast<TraceOp>(opBits);
    out.tenant = prevTenant_;
    out.ts = timestamps_ ? prevTs_ : 0;
    cur_ = p;
    --chunkLeft_;
    ++recordsRead_;
    return true;
}

} // namespace tako::trace
