#include "trace/replay.hh"

#include <set>
#include <utility>
#include <vector>

#include "tako/registry.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

namespace tako::trace
{

namespace
{

/** Replay counters; registered at construction (stats lookups are
 *  constructor-only), incremented through the cached handles. */
struct ReplayStats
{
    explicit ReplayStats(StatsRegistry &stats)
        : records(stats.handle("trace.records", "records",
                               "trace records replayed")),
          lineOps(stats.handle("trace.line_ops", "accesses",
                               "accesses issued after line expansion")),
          reads(stats.handle("trace.reads", "accesses",
                             "replayed load accesses")),
          writes(stats.handle("trace.writes", "accesses",
                              "replayed store accesses")),
          atomics(stats.handle("trace.atomics", "accesses",
                               "replayed atomic accesses"))
    {
    }

    Counter *records;
    Counter *lineOps;
    Counter *reads;
    Counter *writes;
    Counter *atomics;
};

bool
isRead(TraceOp op)
{
    return op == TraceOp::Load || op == TraceOp::StreamLoad;
}

bool
isAtomic(TraceOp op)
{
    return op == TraceOp::AtomicAdd || op == TraceOp::AtomicSwap;
}

/**
 * Expand one record into word-granular access addresses: the (word-
 * aligned) head address, then one access per additional touched line —
 * a record's footprint costs what it would cost a core to walk it.
 */
void
expandRecord(const TraceRecord &rec, std::vector<Addr> &out)
{
    out.clear();
    out.push_back(rec.addr & ~static_cast<Addr>(7));
    const std::uint32_t size = rec.size ? rec.size : 1;
    const Addr firstLine = lineAlign(rec.addr);
    const Addr lastLine = lineAlign(rec.addr + size - 1);
    for (Addr l = firstLine + lineBytes; l != 0 && l <= lastLine;
         l += lineBytes)
        out.push_back(l);
}

/** Issue one same-op batch through the matching multi-op. */
Task<>
issueBatch(Guest &g, TraceOp op, const std::vector<Addr> &addrs)
{
    switch (op) {
      case TraceOp::Load:
        co_await g.loadMulti(addrs, nullptr);
        break;
      case TraceOp::StreamLoad:
        co_await g.streamLoadMulti(addrs, nullptr);
        break;
      case TraceOp::Store:
      case TraceOp::StreamStore: {
        // The trace carries no data values; store the address itself
        // (deterministic, and distinct per location).
        std::vector<std::pair<Addr, std::uint64_t>> writes;
        writes.reserve(addrs.size());
        for (Addr a : addrs)
            writes.emplace_back(a, a);
        if (op == TraceOp::Store)
            co_await g.storeMulti(writes);
        else
            co_await g.streamStoreMulti(writes);
        break;
      }
      case TraceOp::AtomicAdd: {
        std::vector<std::pair<Addr, std::uint64_t>> adds;
        adds.reserve(addrs.size());
        for (Addr a : addrs)
            adds.emplace_back(a, 1);
        co_await g.atomicAddMulti(adds);
        break;
      }
      case TraceOp::AtomicSwap:
        co_await g.atomicSwapMulti(addrs, 1, nullptr);
        break;
    }
}

/** One core's share of the trace, replayed in trace order. */
Task<>
replayCore(Guest &g, const std::vector<TraceRecord> &recs,
           const TraceReplayConfig &cfg, ReplayStats &stats)
{
    std::vector<Addr> batch;
    std::vector<Addr> expanded;
    TraceOp curOp = TraceOp::Load;
    std::uint64_t pendingInstrs = 0;
    for (const TraceRecord &rec : recs) {
        ++*stats.records;
        expandRecord(rec, expanded);
        for (Addr a : expanded) {
            if (!batch.empty() &&
                (rec.op != curOp || batch.size() >= cfg.batch)) {
                co_await g.exec(pendingInstrs);
                pendingInstrs = 0;
                co_await issueBatch(g, curOp, batch);
                batch.clear();
            }
            curOp = rec.op;
            batch.push_back(a);
            ++*stats.lineOps;
            if (isAtomic(rec.op))
                ++*stats.atomics;
            else if (isRead(rec.op))
                ++*stats.reads;
            else
                ++*stats.writes;
        }
        pendingInstrs += cfg.instrsPerRecord;
    }
    if (pendingInstrs)
        co_await g.exec(pendingInstrs);
    if (!batch.empty())
        co_await issueBatch(g, curOp, batch);
}

TraceOp
opOfReq(const AccessReq &req)
{
    switch (req.cmd) {
      case MemCmd::Store:
        return req.noFetch ? TraceOp::StreamStore : TraceOp::Store;
      case MemCmd::AtomicAdd:
        return TraceOp::AtomicAdd;
      case MemCmd::AtomicSwap:
        return TraceOp::AtomicSwap;
      case MemCmd::Load:
      default:
        return req.useOnce ? TraceOp::StreamLoad : TraceOp::Load;
    }
}

} // namespace

TraceReplayResult
runTraceReplay(const TraceReplayConfig &cfg, SystemConfig sys_cfg)
{
    TraceReplayResult res;

    // Decode the whole stream up front (host side): validation failures
    // surface before any simulation runs, and partitioning is trivial.
    TraceReader reader;
    if (!reader.open(cfg.path)) {
        res.error = reader.error();
        return res;
    }
    const unsigned cores = sys_cfg.mem.tiles;
    std::vector<std::vector<TraceRecord>> perCore(cores);
    std::set<std::uint32_t> tenants;
    TraceRecord rec;
    // Addresses at or above MorphRegistry::phantomBase (2^46) belong to
    // the täkō phantom space and require a morph registration; real
    // traces (Pin captures use 47-bit user-space addresses) may exceed
    // it. Fold them into the real space by masking the top bits — page
    // and line offsets, and locality within any region, are preserved.
    constexpr Addr realMask = MorphRegistry::phantomBase - 1;
    while (reader.next(rec)) {
        rec.addr &= realMask;
        tenants.insert(rec.tenant);
        perCore[rec.tenant % cores].push_back(rec);
        ++res.records;
    }
    if (!reader.error().empty()) {
        res.error = reader.error();
        return res;
    }
    reader.close();
    res.tenantsSeen = tenants.size();
    if (res.records == 0) {
        res.error = "takotrace replay: '" + cfg.path +
                    "' holds no records";
        return res;
    }

    // Optional re-record of the replayed stream (normalized form).
    TraceWriter recorder;
    if (!cfg.recordPath.empty()) {
        TraceWriter::Options wopt;
        wopt.timestamps = true;
        if (!recorder.open(cfg.recordPath, wopt)) {
            res.error = recorder.error();
            return res;
        }
        TraceWriter *w = &recorder;
        sys_cfg.accessTracer = [w](Tick now, const AccessReq &req) {
            w->append({req.addr, 8, opOfReq(req),
                       static_cast<std::uint32_t>(req.tile),
                       static_cast<std::uint64_t>(now)});
        };
    }

    System sys(sys_cfg);
    ReplayStats stats(sys.stats());
    // The replay frontend knows its total work up front (res.records
    // decoded above), so progress heartbeats can carry a done-fraction
    // and an ETA. Reads a deterministic counter at deterministic beat
    // ticks — observability only, nothing feeds back into the run.
    if (sys.monitor()) {
        Counter *done = stats.records;
        const double total = static_cast<double>(res.records);
        sys.monitor()->setFractionDone(
            [done, total] { return done->value() / total; });
    }
    for (unsigned c = 0; c < cores; ++c) {
        if (perCore[c].empty())
            continue;
        const std::vector<TraceRecord> *recs = &perCore[c];
        sys.addThread(static_cast<int>(c),
                      [recs, &cfg, &stats](Guest &g) -> Task<> {
                          co_await replayCore(g, *recs, cfg, stats);
                      });
    }
    const Tick cycles = sys.run();
    res.metrics = collectMetrics(sys, cfg.label, cycles);
    res.metrics.extra["trace.records"] =
        static_cast<double>(res.records);
    res.metrics.extra["trace.tenants"] =
        static_cast<double>(res.tenantsSeen);

    if (!cfg.recordPath.empty()) {
        if (!recorder.close()) {
            res.error = recorder.error();
            return res;
        }
    }
    res.ok = true;
    return res;
}

} // namespace tako::trace
