#include "trace/writer.hh"

#include <cstring>

namespace tako::trace
{

namespace
{

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    put32(p, static_cast<std::uint32_t>(v));
    put32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

} // namespace

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::Load: return "load";
      case TraceOp::Store: return "store";
      case TraceOp::StreamLoad: return "stream-load";
      case TraceOp::StreamStore: return "stream-store";
      case TraceOp::AtomicAdd: return "atomic-add";
      case TraceOp::AtomicSwap: return "atomic-swap";
    }
    return "?";
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        // Abandoned without close(): leave the invalid placeholder
        // header in place so readers reject the file.
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
TraceWriter::open(const std::string &path, Options opt)
{
    if (file_) {
        setError("open() on an already-open writer");
        return false;
    }
    if (opt.chunkRecords == 0)
        opt.chunkRecords = 1;
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        setError("cannot create '" + path + "'");
        return false;
    }
    opt_ = opt;
    error_.clear();
    records_ = chunks_ = chunkFirstIndex_ = 0;
    chunkRecords_ = 0;
    payload_.clear();
    prevAddr_ = 0;
    prevSize_ = 8;
    prevTenant_ = 0;
    prevTs_ = lastTs_ = 0;

    // Placeholder header: counts are zero (invalid for a non-empty
    // trace) until close() patches the real values in.
    std::uint8_t hdr[fileHeaderBytes] = {};
    std::memcpy(hdr, traceMagic.data(), traceMagic.size());
    put32(hdr + 8, traceVersion);
    put32(hdr + 12, opt_.timestamps ? flagTimestamps : 0);
    if (std::fwrite(hdr, 1, sizeof(hdr), file_) != sizeof(hdr)) {
        setError("header write failed");
        return false;
    }
    return true;
}

void
TraceWriter::append(const TraceRecord &rec)
{
    if (!file_ || !error_.empty())
        return; // sticky error; close() reports it
    if (opt_.timestamps && rec.ts < lastTs_) {
        setError("non-monotonic timestamp at record " +
                 std::to_string(records_));
        return;
    }

    std::uint8_t head = static_cast<std::uint8_t>(rec.op) & headOpMask;
    const bool sendSize = rec.size != prevSize_;
    const bool sendTenant = rec.tenant != prevTenant_;
    if (sendSize)
        head |= headHasSize;
    if (sendTenant)
        head |= headHasTenant;
    if (opt_.timestamps)
        head |= headHasTs;
    payload_.push_back(head);
    putVarint(payload_, zigzagEncode(static_cast<std::int64_t>(
                            rec.addr - prevAddr_)));
    if (sendSize)
        putVarint(payload_, rec.size);
    if (sendTenant)
        putVarint(payload_, rec.tenant);
    if (opt_.timestamps)
        putVarint(payload_, rec.ts - prevTs_);

    prevAddr_ = rec.addr;
    prevSize_ = rec.size;
    prevTenant_ = rec.tenant;
    prevTs_ = rec.ts;
    lastTs_ = rec.ts;
    ++records_;
    ++chunkRecords_;
    if (chunkRecords_ >= opt_.chunkRecords)
        flushChunk();
}

void
TraceWriter::flushChunk()
{
    if (chunkRecords_ == 0)
        return;
    std::uint8_t hdr[chunkHeaderBytes];
    put32(hdr, chunkMagic);
    put32(hdr + 4, chunkRecords_);
    put32(hdr + 8, static_cast<std::uint32_t>(payload_.size()));
    put32(hdr + 12, crc32(payload_.data(), payload_.size()));
    put64(hdr + 16, chunkFirstIndex_);
    if (std::fwrite(hdr, 1, sizeof(hdr), file_) != sizeof(hdr) ||
        std::fwrite(payload_.data(), 1, payload_.size(), file_) !=
            payload_.size()) {
        setError("chunk write failed");
        return;
    }
    ++chunks_;
    chunkFirstIndex_ = records_;
    chunkRecords_ = 0;
    payload_.clear();
    // Chunks decode independently: reset the delta context.
    prevAddr_ = 0;
    prevSize_ = 8;
    prevTenant_ = 0;
    prevTs_ = 0;
}

bool
TraceWriter::close()
{
    if (!file_) {
        if (error_.empty())
            setError("close() without open()");
        return false;
    }
    flushChunk();
    if (error_.empty()) {
        std::uint8_t counts[16];
        put64(counts, records_);
        put64(counts + 8, chunks_);
        if (std::fseek(file_, 16, SEEK_SET) != 0 ||
            std::fwrite(counts, 1, sizeof(counts), file_) !=
                sizeof(counts))
            setError("header patch failed");
    }
    const bool flushOk = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!flushOk && error_.empty())
        setError("final flush failed");
    return error_.empty();
}

void
TraceWriter::setError(const std::string &msg)
{
    if (error_.empty())
        error_ = "takotrace write: " + msg;
}

} // namespace tako::trace
