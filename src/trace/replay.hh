/**
 * @file
 * Trace replay: drive a takotrace record stream through the full
 * MemorySystem / morph path as a guest workload.
 *
 * Replay is deterministic by construction: the issue order is a pure
 * function of the trace. Records are partitioned across cores by
 * `tenant % numCores` (order-preserving within a core), each core's
 * stream batches runs of same-op records into multi-ops (bounded MLP,
 * like the hand-written workloads), and records wider than one word are
 * expanded to one access per touched cache line. Non-host metrics are
 * therefore bit-identical across -j1/-j8 and --shards (CI gates on it).
 */

#ifndef TAKO_TRACE_REPLAY_HH
#define TAKO_TRACE_REPLAY_HH

#include <string>

#include "workloads/common.hh"

namespace tako::trace
{

struct TraceReplayConfig
{
    std::string path;       ///< takotrace-v1 file to replay
    /**
     * Optional: re-record the replayed stream into a fresh takotrace
     * file. The recorded trace is the *normalized* form of the input —
     * word-granular accesses tagged tenant = issuing core, timestamped
     * with the simulated tick — so ingest-text -> replay -> record
     * yields a compact binary equivalent.
     */
    std::string recordPath;
    std::string label = "trace";
    unsigned batch = 8;     ///< multi-op batch bound (issue-window MLP)
    /** Non-memory work charged per record (compute between accesses). */
    std::uint64_t instrsPerRecord = 20;
};

struct TraceReplayResult
{
    bool ok = false;
    std::string error;
    RunMetrics metrics;
    std::uint64_t records = 0;     ///< records replayed
    std::uint64_t tenantsSeen = 0; ///< distinct tenant ids in the trace
};

/** Replay @p cfg.path on a system built from @p sys_cfg. */
TraceReplayResult runTraceReplay(const TraceReplayConfig &cfg,
                                 SystemConfig sys_cfg);

} // namespace tako::trace

#endif // TAKO_TRACE_REPLAY_HH
