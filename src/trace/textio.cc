#include "trace/textio.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "trace/writer.hh"

namespace tako::trace
{

namespace
{

/** Upper-case @p s (ASCII). */
std::string
upper(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::toupper(c));
    });
    return s;
}

bool
opFromToken(const std::string &tok, TraceOp &op)
{
    static const std::map<std::string, TraceOp> table = {
        {"R", TraceOp::Load},          {"L", TraceOp::Load},
        {"READ", TraceOp::Load},       {"LOAD", TraceOp::Load},
        {"W", TraceOp::Store},         {"S", TraceOp::Store},
        {"WRITE", TraceOp::Store},     {"STORE", TraceOp::Store},
        {"SR", TraceOp::StreamLoad},   {"NTR", TraceOp::StreamLoad},
        {"STREAMLOAD", TraceOp::StreamLoad},
        {"STREAM-LOAD", TraceOp::StreamLoad},
        {"SW", TraceOp::StreamStore},  {"NTW", TraceOp::StreamStore},
        {"STREAMSTORE", TraceOp::StreamStore},
        {"STREAM-STORE", TraceOp::StreamStore},
        {"A", TraceOp::AtomicAdd},     {"ADD", TraceOp::AtomicAdd},
        {"ATOMICADD", TraceOp::AtomicAdd},
        {"ATOMIC-ADD", TraceOp::AtomicAdd},
        {"X", TraceOp::AtomicSwap},    {"XCHG", TraceOp::AtomicSwap},
        {"ATOMICSWAP", TraceOp::AtomicSwap},
        {"ATOMIC-SWAP", TraceOp::AtomicSwap},
    };
    const auto it = table.find(upper(tok));
    if (it == table.end())
        return false;
    op = it->second;
    return true;
}

/** Parse hex (0x... or bare hex) or decimal into @p out. */
bool
parseAddr(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    // Pin dumps bare hex ("7f5c3c0a1b80"); plain strtoull(,,0) would
    // read that as decimal-with-junk. Try 0x / decimal first, then a
    // full-token hex parse.
    const int base =
        tok.size() > 2 && tok[0] == '0' &&
                (tok[1] == 'x' || tok[1] == 'X')
            ? 16
            : 10;
    out = std::strtoull(tok.c_str(), &end, base);
    if (end && *end == '\0')
        return true;
    out = std::strtoull(tok.c_str(), &end, 16);
    return end && *end == '\0';
}

bool
parseDec(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(tok.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

int
parseTraceLine(const std::string &line, TraceRecord &out,
               std::uint32_t &prevSize, std::string &err)
{
    std::vector<std::string> toks;
    std::istringstream is(line);
    std::string t;
    while (is >> t)
        toks.push_back(t);
    if (toks.empty() || toks[0][0] == '#' || toks[0][0] == ';' ||
        toks[0].rfind("//", 0) == 0)
        return 0;

    // Pin's pinatrace prefixes an instruction-pointer column ending in
    // ':' ("0x7f..2: R 0x7f..80 8") — drop it.
    std::size_t i = 0;
    if (toks[0].back() == ':')
        ++i;
    if (i >= toks.size()) {
        err = "missing op token";
        return -1;
    }
    TraceRecord rec;
    if (!opFromToken(toks[i], rec.op)) {
        err = "unknown op '" + toks[i] + "'";
        return -1;
    }
    if (++i >= toks.size()) {
        err = "missing address";
        return -1;
    }
    std::uint64_t v;
    if (!parseAddr(toks[i], v)) {
        err = "bad address '" + toks[i] + "'";
        return -1;
    }
    rec.addr = v;
    rec.size = prevSize;
    ++i;
    if (i < toks.size()) {
        if (!parseDec(toks[i], v) || v == 0 || v > 0xffffffffull) {
            err = "bad size '" + toks[i] + "'";
            return -1;
        }
        rec.size = static_cast<std::uint32_t>(v);
        ++i;
    }
    if (i < toks.size()) {
        if (!parseDec(toks[i], v) || v > 0xffffffffull) {
            err = "bad tenant '" + toks[i] + "'";
            return -1;
        }
        rec.tenant = static_cast<std::uint32_t>(v);
        ++i;
    }
    if (i < toks.size()) {
        if (!parseDec(toks[i], v)) {
            err = "bad timestamp '" + toks[i] + "'";
            return -1;
        }
        rec.ts = v;
        ++i;
    }
    if (i < toks.size()) {
        err = "trailing token '" + toks[i] + "'";
        return -1;
    }
    prevSize = rec.size;
    out = rec;
    return 1;
}

IngestResult
ingestText(std::istream &in, TraceWriter &writer)
{
    IngestResult res;
    std::string line;
    std::uint32_t prevSize = 8;
    std::uint64_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        TraceRecord rec;
        std::string err;
        const int got = parseTraceLine(line, rec, prevSize, err);
        if (got < 0) {
            res.error = "line " + std::to_string(lineNo) + ": " + err;
            return res;
        }
        if (got == 0) {
            ++res.skipped;
            continue;
        }
        writer.append(rec);
        ++res.records;
    }
    res.ok = true;
    return res;
}

void
formatTraceLine(std::ostream &os, const TraceRecord &rec,
                bool timestamps)
{
    os << traceOpName(rec.op) << " 0x" << std::hex << rec.addr
       << std::dec << " " << rec.size << " " << rec.tenant;
    if (timestamps)
        os << " " << rec.ts;
    os << "\n";
}

} // namespace tako::trace
