/**
 * @file
 * Streaming takotrace-v1 encoder.
 *
 * Records are buffered, delta + LEB128 encoded into fixed-capacity
 * chunks, and written with per-chunk CRCs. The file header carries the
 * total record/chunk counts and is patched on close(), so a writer that
 * dies mid-stream leaves a file whose header says 0 records — readers
 * reject it instead of replaying a silent prefix.
 */

#ifndef TAKO_TRACE_WRITER_HH
#define TAKO_TRACE_WRITER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/format.hh"

namespace tako::trace
{

class TraceWriter
{
  public:
    struct Options
    {
        /** Encode per-record timestamp deltas (sets the file flag).
         *  Timestamps must be non-decreasing in append order. */
        bool timestamps = false;
        /** Records per chunk: the decode/corruption-containment unit. */
        std::uint32_t chunkRecords = 4096;
    };

    TraceWriter() = default;
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Create @p path (truncating) and write a placeholder header. */
    bool open(const std::string &path, Options opt);
    bool open(const std::string &path) { return open(path, Options()); }

    /** Append one record. Errors (I/O, non-monotonic timestamp) are
     *  sticky and reported by close(). */
    void append(const TraceRecord &rec);

    /**
     * Flush the final chunk and patch the real record/chunk counts into
     * the header. Returns false if any append or flush failed; the file
     * is then invalid by construction (header still says 0 records).
     */
    bool close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t recordsWritten() const { return records_; }
    const std::string &error() const { return error_; }

  private:
    void flushChunk();
    void setError(const std::string &msg);

    std::FILE *file_ = nullptr;
    Options opt_;
    std::string error_;

    std::vector<std::uint8_t> payload_;
    std::uint32_t chunkRecords_ = 0;    ///< records in the open chunk
    std::uint64_t records_ = 0;         ///< total appended
    std::uint64_t chunks_ = 0;          ///< chunks flushed
    std::uint64_t chunkFirstIndex_ = 0; ///< first record of open chunk

    // Delta context; reset at every chunk boundary.
    Addr prevAddr_ = 0;
    std::uint32_t prevSize_ = 8;
    std::uint32_t prevTenant_ = 0;
    std::uint64_t prevTs_ = 0;
    /** Last appended timestamp, never reset: monotonicity is a
     *  file-wide contract, not a per-chunk one. */
    std::uint64_t lastTs_ = 0;
};

} // namespace tako::trace

#endif // TAKO_TRACE_WRITER_HH
