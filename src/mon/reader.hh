/**
 * @file
 * mmap-backed takomon-v1 decoder.
 *
 * open() maps the file read-only, decodes the series directory, and
 * walks the chunk directory once, bounds-checking every header against
 * the file size and the header's sample count — a truncated or corrupt
 * file is rejected before a single row is decoded. Payload CRCs are
 * verified lazily, when iteration first enters each chunk.
 *
 * Iteration is strictly forward (`next()`), with `rewind()` to
 * restart; any structural violation mid-stream sets a sticky error and
 * ends iteration — corrupt files fail loudly, never decode a silent
 * prefix. Same read discipline as trace::TraceReader.
 */

#ifndef TAKO_MON_READER_HH
#define TAKO_MON_READER_HH

#include <string>
#include <vector>

#include "mon/format.hh"

namespace tako::mon
{

class MonReader
{
  public:
    MonReader() = default;
    ~MonReader();

    MonReader(const MonReader &) = delete;
    MonReader &operator=(const MonReader &) = delete;

    /**
     * Map @p path and validate header, directory, and chunk layout. On
     * failure returns false with error() set; the reader is closed.
     */
    bool open(const std::string &path);

    /** Unmap. */
    void close();

    /**
     * Decode the next row: the sample tick into @p tick and one value
     * per series (directory order) into @p values. Returns false at
     * end-of-file or on a decode error — distinguish with
     * error().empty().
     */
    bool next(Tick &tick, std::vector<double> &values);

    /** Restart iteration from the first row. Keeps the mapping. */
    void rewind();

    bool isOpen() const { return data_ != nullptr; }
    const std::string &error() const { return error_; }
    Tick interval() const { return interval_; }
    std::uint64_t sampleCount() const { return sampleCount_; }
    std::uint64_t samplesRead() const { return samplesRead_; }
    std::uint64_t chunkCount() const { return chunks_.size(); }
    const std::vector<SeriesDesc> &series() const { return series_; }

  private:
    struct Chunk
    {
        std::size_t payloadOff = 0;
        std::uint32_t payloadBytes = 0;
        std::uint32_t samples = 0;
        std::uint32_t crc = 0;
        bool crcChecked = false;
    };

    /** Enter chunk @p idx: CRC-check (once) and decode its columns. */
    bool enterChunk(std::size_t idx);
    bool fail(const std::string &msg);

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;            ///< data_ is an mmap (vs. heap copy)
    std::vector<std::uint8_t> heap_; ///< fallback when mmap fails

    std::string error_;
    Tick interval_ = 0;
    std::uint64_t sampleCount_ = 0;
    std::vector<SeriesDesc> series_;
    std::vector<Chunk> chunks_;

    // Cursor: decoded columns of the current chunk, handed out row by
    // row. Column decode happens on chunk entry — rows then cost one
    // copy each and every structural check runs before the first row.
    std::size_t chunkIdx_ = 0;
    std::vector<Tick> ticks_;
    std::vector<double> rows_; ///< row-major values of current chunk
    std::uint32_t rowInChunk_ = 0;
    std::uint64_t samplesRead_ = 0;
    Tick lastTick_ = 0;
    bool entered_ = false; ///< enterChunk(0) ran since rewind()
};

} // namespace tako::mon

#endif // TAKO_MON_READER_HH
