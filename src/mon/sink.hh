/**
 * @file
 * takomon TimeSeriesSink: the one sampling path for periodic telemetry.
 *
 * The sink rides the EventQueue's advance hook (at most one per queue)
 * and multiplexes every fixed-cadence consumer behind it:
 *
 *  - the in-memory StatsTimeSeries exported by --stats-json (what the
 *    PR-1 StatsSampler produced; that class is now an alias of this
 *    one — see src/sim/sampler.hh);
 *  - an optional takomon-v1 binary file (MonWriter) holding the same
 *    rows, bit-identical across host thread counts and shard counts;
 *  - optional progress heartbeats at their own (sim-tick) cadence.
 *
 * Samples are taken when simulated time first reaches each interval
 * boundary, before the events at that tick run, so a sample at tick T
 * reflects everything that completed strictly before T. Sampled values
 * are a pure function of sim state: the sink samples counters and
 * histograms fixed at construction and never the host.* namespace
 * (those gauges are registered after the run, and are skipped by name
 * as well). Heartbeats fire at deterministic ticks but carry host-side
 * throughput — they go to a callback/stderr, never into the series.
 */

#ifndef TAKO_MON_SINK_HH
#define TAKO_MON_SINK_HH

#include <functional>
#include <string>
#include <vector>

#include "mon/writer.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace tako::mon
{

/** One progress heartbeat, emitted at a deterministic sim tick. */
struct ProgressBeat
{
    Tick tick = 0;             ///< sim tick of this boundary
    std::uint64_t events = 0;  ///< kernel events fired so far
    double hostSeconds = 0;    ///< host.* wall time since the first event
    double eventsPerSec = 0;   ///< host.* throughput (events/hostSeconds)
    double fractionDone = -1;  ///< work fraction if known, else < 0
};

/** The default heartbeat consumer: one human-readable stderr line per
 *  beat (with %done and ETA when the fraction is known). Custom onBeat
 *  handlers can call it to keep the human line alongside their own. */
void printProgressBeat(const ProgressBeat &b);

class TimeSeriesSink
{
  public:
    struct Options
    {
        /** Series cadence in ticks; 0 = no series capture. */
        Tick sampleEvery = 0;
        /** Counter/histogram name patterns ("prefix*suffix"; empty =
         *  everything registered at construction). */
        std::vector<std::string> patterns;
        /** takomon-v1 output path; empty = in-memory series only.
         *  Requires sampleEvery != 0. */
        std::string monPath;
        /** Rows per takomon chunk (MonWriter::Options). */
        std::uint32_t chunkSamples = 512;
        /** Heartbeat cadence in ticks; 0 = no heartbeats. */
        Tick progressEvery = 0;
        /** Heartbeat consumer; default prints one line to stderr. */
        std::function<void(const ProgressBeat &)> onBeat;
    };

    /**
     * Install on @p eq's advance hook. At least one cadence must be
     * enabled. All counters/histograms to sample must already be
     * registered in @p stats. A monPath that cannot be created is a
     * fatal (configuration) error — it fails before the run, not after.
     */
    TimeSeriesSink(EventQueue &eq, StatsRegistry &stats, Options opt);

    /** Back-compat constructor with the old StatsSampler signature:
     *  in-memory series capture only. */
    TimeSeriesSink(EventQueue &eq, StatsRegistry &stats, Tick interval,
                   const std::vector<std::string> &patterns = {});

    ~TimeSeriesSink();

    TimeSeriesSink(const TimeSeriesSink &) = delete;
    TimeSeriesSink &operator=(const TimeSeriesSink &) = delete;

    /** Provide the done-fraction for heartbeat ETA (e.g. trace replay
     *  knows records done / total). Cleared by passing nullptr. */
    void setFractionDone(std::function<double()> fn)
    {
        fractionDone_ = std::move(fn);
    }

    /**
     * Decomposed-run mode: sample each shard domain's stat-lane partials
     * on that domain's own queue advance hook, then merge rows after the
     * run (mergeShardSamples). Call once, before the run starts, with one
     * queue per domain; queues[0] must be the queue passed at
     * construction. Each domain's hook reads only its own lanes and
     * writes only its own capture buffer, so sampling never synchronizes
     * workers — and because every event executes at the same tick in
     * exactly one domain at any partition, the merged rows are
     * bit-identical to a monolithic run's. Heartbeats keep firing from
     * domain 0 (their events/throughput fields cover domain 0's queue
     * only; beats are host-side observability, never series data).
     */
    void shardAcross(const std::vector<EventQueue *> &queues);

    /**
     * Merge the per-domain partial rows captured since shardAcross()
     * into the in-memory series and the takomon file, in domain order.
     * Call after the sharded executor returns and *before*
     * StatsRegistry::mergeLanes(): boundaries past a drained domain's
     * last event read that domain's final live lane partials.
     */
    void mergeShardSamples();

    /**
     * Flush and close the takomon file (no-op without one). Idempotent;
     * the destructor calls it and warns on a swallowed error. Returns
     * false with error() set if any write failed.
     */
    bool finish();

    const std::string &error() const { return writer_.error(); }
    std::uint64_t samplesTaken() const { return samplesTaken_; }
    const std::vector<SeriesDesc> &seriesDescs() const { return series_; }

  private:
    /** What one series reads; exactly one pointer is set. */
    struct Source
    {
        const Counter *counter = nullptr;
        const Histogram *hist = nullptr;
        SeriesKind kind = SeriesKind::Counter;
    };

    void buildSeries(const std::vector<std::string> &patterns);
    double readSource(const Source &s) const;
    double readLane(const Source &s, unsigned d) const;
    Tick onAdvance(Tick to);
    Tick onShardAdvance(unsigned d, Tick to);
    void takeSample(Tick at);
    void emitBeat(Tick at);
    Tick nextWatermark() const;

    EventQueue &eq_;
    StatsRegistry &stats_;
    Options opt_;

    std::vector<SeriesDesc> series_;
    std::vector<Source> sources_; ///< parallel to series_
    std::vector<double> row_;     ///< scratch, one slot per series
    MonWriter writer_;
    bool writing_ = false;
    std::uint64_t samplesTaken_ = 0;

    /** One domain's capture state (decomposed runs); owned exclusively
     *  by that domain's worker, padded against false sharing. */
    struct alignas(64) DomainCapture
    {
        Tick next = 0; ///< next series boundary on this domain's clock
        std::vector<std::vector<double>> rows; ///< lane-partial rows
    };

    std::vector<EventQueue *> shardQueues_; ///< non-empty = sharded mode
    std::vector<DomainCapture> capture_;    ///< parallel to shardQueues_
    Tick firstBoundary_ = 0; ///< tick of row 0 in sharded mode

    Tick nextSample_ = 0; ///< next series boundary (0 = disabled)
    Tick nextBeat_ = 0;   ///< next heartbeat boundary (0 = disabled)
    std::function<double()> fractionDone_;
    double firstBeatHostTime_ = 0; ///< host clock at construction
};

} // namespace tako::mon

#endif // TAKO_MON_SINK_HH
