/**
 * @file
 * takomon-v1: the on-disk binary time-series format.
 *
 * A monitor file holds the sampled trajectory of every selected
 * StatsRegistry series — counters plus histogram count/sum/max — at a
 * fixed sim-tick cadence. Samples are a pure function of simulation
 * state (the sink never records host.* gauges), so the file is
 * bit-identical across host thread counts and shard counts for the
 * same run. The layout (all integers little-endian; full byte-level
 * spec in DESIGN.md Sec. 4.10):
 *
 *   FileHeader (40 bytes)
 *     char[8] magic        "takomon1"
 *     u32     version      1
 *     u32     flags        none defined; must be zero
 *     u64     interval     ticks between samples (nonzero)
 *     u32     seriesCount  series in the directory
 *     u32     dirBytes     directory payload size in bytes
 *     u64     sampleCount  total samples (rows) in the file
 *
 *   Directory (dirBytes + 4)
 *     per series: u8 kind (SeriesKind), LEB128 nameLen, name bytes
 *     u32 crc32 of the dirBytes payload
 *
 *   Chunks until end of file:
 *     ChunkHeader (24 bytes)
 *       u32 magic          0x31484d54 ("TMH1")
 *       u32 samples        rows encoded in this chunk
 *       u32 payloadBytes   encoded payload size in bytes
 *       u32 crc32          IEEE CRC-32 of the payload bytes
 *       u64 firstIndex     file-wide row index of the chunk's first row
 *     payloadBytes of column-encoded rows
 *
 * Chunk payload: columns, not rows. The tick column comes first — one
 * LEB128 tick delta per row, with the delta context reset at the chunk
 * boundary (the first value is the absolute tick), so chunks decode
 * independently. Then one column per series, in directory order,
 * introduced by a one-byte encoding tag:
 *
 *   0  integer deltas: every value in the column is an integral double;
 *      each row is zigzag(LEB128) of the wrapping int64 difference from
 *      the previous row's value (context starts at 0 per chunk).
 *   1  raw: 8-byte IEEE-754 little-endian doubles, one per row.
 *
 * Counters are almost always integral (event and access counts), so
 * the common case is one or two bytes per value; a single fractional
 * value (e.g. energy in pJ) demotes only its own column in its own
 * chunk to raw doubles.
 *
 * The header's sampleCount is written as the ~0 sentinel at open() and
 * patched to the real count on close(); a writer that dies mid-stream
 * leaves the sentinel behind, which readers always reject — even when
 * no chunk was flushed, where a zero placeholder would be
 * indistinguishable from a legitimately empty closed file. Same
 * discipline as takotrace, whose helpers (LEB128, zigzag, CRC-32) this
 * format reuses from src/trace/format.hh.
 */

#ifndef TAKO_MON_FORMAT_HH
#define TAKO_MON_FORMAT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/format.hh"

namespace tako::mon
{

// Reuse the takotrace codec primitives: one LEB128/zigzag/CRC
// implementation serves both binary formats.
using trace::crc32;
using trace::getVarint;
using trace::putVarint;
using trace::zigzagDecode;
using trace::zigzagEncode;

/** What a series samples from the registry. */
enum class SeriesKind : std::uint8_t
{
    Counter = 0,   ///< Counter::value()
    HistCount = 1, ///< Histogram::count()
    HistSum = 2,   ///< Histogram::sum()
    HistMax = 3,   ///< Histogram::max()
};

constexpr unsigned numSeriesKinds = 4;

/** One directory entry: a named series of one registry statistic. */
struct SeriesDesc
{
    std::string name;
    SeriesKind kind = SeriesKind::Counter;

    bool operator==(const SeriesDesc &) const = default;
};

// ---- file constants ----------------------------------------------------

constexpr std::array<char, 8> monMagic = {'t', 'a', 'k', 'o',
                                          'm', 'o', 'n', '1'};
constexpr std::uint32_t monVersion = 1;
constexpr std::uint32_t monChunkMagic = 0x31484d54; // "TMH1"
constexpr std::size_t monFileHeaderBytes = 40;
constexpr std::size_t monChunkHeaderBytes = 24;

/** sampleCount value written at open() and replaced on close(): an
 *  impossible count, so an unclosed file can never read as valid. */
constexpr std::uint64_t monUnpatchedCount = ~std::uint64_t{0};

/** Column encoding tags. */
constexpr std::uint8_t colIntDeltas = 0;
constexpr std::uint8_t colRawDoubles = 1;

/** Suffix appended to a histogram name per derived series. */
const char *seriesKindSuffix(SeriesKind kind);

} // namespace tako::mon

#endif // TAKO_MON_FORMAT_HH
