/**
 * @file
 * Streaming takomon-v1 encoder.
 *
 * Rows (one sampled value per series, at one tick) are buffered and
 * column-encoded into fixed-capacity chunks with per-chunk CRCs. The
 * file header carries the total sample count and is patched on
 * close(), so a writer that dies mid-stream leaves a file whose header
 * says 0 samples — readers reject it instead of trusting a silent
 * prefix. Same write discipline as trace::TraceWriter.
 */

#ifndef TAKO_MON_WRITER_HH
#define TAKO_MON_WRITER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "mon/format.hh"

namespace tako::mon
{

class MonWriter
{
  public:
    struct Options
    {
        /** Rows per chunk: the decode/corruption-containment unit. */
        std::uint32_t chunkSamples = 512;
    };

    MonWriter() = default;
    ~MonWriter();

    MonWriter(const MonWriter &) = delete;
    MonWriter &operator=(const MonWriter &) = delete;

    /**
     * Create @p path (truncating), write a placeholder header and the
     * series directory. @p interval is the sampling cadence in ticks
     * (must be nonzero); @p series fixes the column set and order for
     * the file's lifetime.
     */
    bool open(const std::string &path, Tick interval,
              std::vector<SeriesDesc> series, Options opt);

    bool
    open(const std::string &path, Tick interval,
         std::vector<SeriesDesc> series)
    {
        return open(path, interval, std::move(series), Options());
    }

    /**
     * Append one row: @p values[i] is series[i] sampled at @p tick.
     * Ticks must be strictly increasing. Errors (I/O, arity mismatch,
     * non-monotonic tick) are sticky and reported by close().
     */
    void addSample(Tick tick, const std::vector<double> &values);

    /**
     * Flush the final chunk and patch the real sample count into the
     * header. Returns false if anything failed; the file is then
     * invalid by construction (header still says 0 samples).
     */
    bool close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t samplesWritten() const { return samples_; }
    const std::string &error() const { return error_; }

  private:
    void flushChunk();
    void setError(const std::string &msg);

    std::FILE *file_ = nullptr;
    Options opt_;
    std::string error_;
    std::size_t seriesCount_ = 0;

    /** Buffered rows of the open chunk (row-major; column-encoded at
     *  flush, when each column's integrality is known). */
    std::vector<Tick> ticks_;
    std::vector<double> rows_;

    std::uint64_t samples_ = 0;         ///< total appended
    std::uint64_t chunkFirstIndex_ = 0; ///< first row of the open chunk
    Tick lastTick_ = 0;
    bool anySample_ = false;
};

} // namespace tako::mon

#endif // TAKO_MON_WRITER_HH
