#include "mon/sink.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace tako::mon
{

namespace
{

/** Host wall clock in seconds; feeds host.*-exempt heartbeat fields
 *  only, never a sampled series. */
double
hostNow()
{
    // takolint: ok(D2, heartbeat throughput is host.* observability)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

} // namespace

void
printProgressBeat(const ProgressBeat &b)
{
    char tail[64] = "";
    if (b.fractionDone >= 0) {
        const double eta =
            b.fractionDone > 0
                ? b.hostSeconds * (1 - b.fractionDone) / b.fractionDone
                : -1;
        if (eta >= 0)
            std::snprintf(tail, sizeof(tail), " %5.1f%% eta=%.1fs",
                          b.fractionDone * 100, eta);
        else
            std::snprintf(tail, sizeof(tail), " %5.1f%%",
                          b.fractionDone * 100);
    }
    std::fprintf(stderr,
                 "takomon: progress tick=%llu events=%llu "
                 "ev/s=%.3gM%s\n",
                 (unsigned long long)b.tick,
                 (unsigned long long)b.events, b.eventsPerSec / 1e6,
                 tail);
}

TimeSeriesSink::TimeSeriesSink(EventQueue &eq, StatsRegistry &stats,
                               Options opt)
    : eq_(eq), stats_(stats), opt_(std::move(opt))
{
    panic_if(opt_.sampleEvery == 0 && opt_.progressEvery == 0,
             "takomon sink with no cadence (sampleEvery and "
             "progressEvery both zero)");
    fatal_if(!opt_.monPath.empty() && opt_.sampleEvery == 0,
             "a takomon output file needs a sampling interval");

    if (opt_.sampleEvery > 0) {
        buildSeries(opt_.patterns);
        StatsTimeSeries &ts = stats_.timeSeries();
        ts.interval = opt_.sampleEvery;
        ts.names.clear();
        for (const SeriesDesc &d : series_)
            ts.names.push_back(d.name);
        nextSample_ = eq_.now() + opt_.sampleEvery;
    }
    if (!opt_.monPath.empty()) {
        MonWriter::Options wopt;
        wopt.chunkSamples = opt_.chunkSamples;
        fatal_if(!writer_.open(opt_.monPath, opt_.sampleEvery, series_,
                               wopt),
                 "%s", writer_.error().c_str());
        writing_ = true;
    }
    if (opt_.progressEvery > 0) {
        nextBeat_ = eq_.now() + opt_.progressEvery;
        firstBeatHostTime_ = hostNow();
    }
    eq_.setAdvanceHook([this](Tick to) { return onAdvance(to); },
                       nextWatermark());
}

TimeSeriesSink::TimeSeriesSink(EventQueue &eq, StatsRegistry &stats,
                               Tick interval,
                               const std::vector<std::string> &patterns)
    : TimeSeriesSink(eq, stats, [&] {
          panic_if(interval == 0, "sampler interval must be nonzero");
          Options o;
          o.sampleEvery = interval;
          o.patterns = patterns;
          return o;
      }())
{
}

TimeSeriesSink::~TimeSeriesSink()
{
    for (EventQueue *q : shardQueues_)
        q->clearAdvanceHook();
    eq_.clearAdvanceHook();
    if (writing_ && !finish())
        warn("%s", writer_.error().c_str());
}

void
TimeSeriesSink::shardAcross(const std::vector<EventQueue *> &queues)
{
    panic_if(queues.empty() || queues[0] != &eq_,
             "shardAcross: queues[0] must be the construction queue");
    panic_if(samplesTaken_ != 0 || !shardQueues_.empty(),
             "shardAcross called twice or after sampling started");
    shardQueues_ = queues;
    capture_.resize(queues.size());
    if (opt_.sampleEvery > 0)
        firstBoundary_ = eq_.now() + opt_.sampleEvery;
    for (unsigned d = 0; d < queues.size(); ++d) {
        DomainCapture &dc = capture_[d];
        dc.next = opt_.sampleEvery > 0
                      ? queues[d]->now() + opt_.sampleEvery
                      : 0;
        Tick wm = dc.next > 0 ? dc.next : ~Tick{0};
        if (d == 0 && nextBeat_ > 0 && nextBeat_ < wm)
            wm = nextBeat_;
        if (dc.next > 0 || d == 0) {
            queues[d]->setAdvanceHook(
                [this, d](Tick to) { return onShardAdvance(d, to); },
                wm);
        }
    }
}

Tick
TimeSeriesSink::onShardAdvance(unsigned d, Tick to)
{
    // Replay every boundary this domain's clock is crossing. The hook
    // fires before any event at tick >= the boundary runs here, so the
    // captured lane partial covers exactly this domain's events strictly
    // before the boundary — the same cut a monolithic sample makes.
    DomainCapture &dc = capture_[d];
    while (dc.next > 0 && dc.next <= to) {
        std::vector<double> row(sources_.size());
        for (std::size_t i = 0; i < sources_.size(); ++i)
            row[i] = readLane(sources_[i], d);
        dc.rows.push_back(std::move(row));
        dc.next += opt_.sampleEvery;
    }
    if (d == 0) {
        while (nextBeat_ > 0 && nextBeat_ <= to) {
            emitBeat(nextBeat_);
            nextBeat_ += opt_.progressEvery;
        }
    }
    Tick wm = dc.next > 0 ? dc.next : ~Tick{0};
    if (d == 0 && nextBeat_ > 0 && nextBeat_ < wm)
        wm = nextBeat_;
    return wm;
}

void
TimeSeriesSink::mergeShardSamples()
{
    if (shardQueues_.empty())
        return;
    for (EventQueue *q : shardQueues_)
        q->clearAdvanceHook();
    if (opt_.sampleEvery == 0)
        return;
    // The domain owning the globally-last event replayed every boundary
    // up to it, so the longest capture has exactly the monolithic row
    // count. Domains that drained earlier stopped firing; their partials
    // for the missing tail are their final live lanes (all their events
    // completed), read here before StatsRegistry::mergeLanes() folds
    // them away.
    std::size_t rows = 0;
    for (const DomainCapture &dc : capture_)
        rows = std::max(rows, dc.rows.size());
    StatsTimeSeries &ts = stats_.timeSeries();
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            const bool isMax = sources_[i].kind == SeriesKind::HistMax;
            double v = 0;
            for (unsigned d = 0; d < capture_.size(); ++d) {
                const double pv = r < capture_[d].rows.size()
                                      ? capture_[d].rows[r][i]
                                      : readLane(sources_[i], d);
                v = isMax ? std::max(v, pv) : v + pv;
            }
            row_[i] = v;
        }
        const Tick at =
            firstBoundary_ + static_cast<Tick>(r) * opt_.sampleEvery;
        ts.ticks.push_back(at);
        ts.samples.push_back(row_);
        if (writing_)
            writer_.addSample(at, row_);
        ++samplesTaken_;
    }
}

bool
TimeSeriesSink::finish()
{
    if (!writing_)
        return error().empty();
    writing_ = false;
    return writer_.close();
}

void
TimeSeriesSink::buildSeries(const std::vector<std::string> &patterns)
{
    // Fix the series set and order (registry map order = sorted by
    // name) at construction; host.* is excluded by design — those
    // gauges are host-timing-dependent and would break the format's
    // bit-identity contract.
    auto addCounter = [this](const std::string &name) {
        if (name.rfind("host.", 0) == 0)
            return;
        series_.push_back({name, SeriesKind::Counter});
        Source src;
        src.counter = &stats_.counters().at(name);
        src.kind = SeriesKind::Counter;
        sources_.push_back(src);
    };
    auto addHistogram = [this](const std::string &name) {
        if (name.rfind("host.", 0) == 0)
            return;
        const Histogram *h = &stats_.histograms().at(name);
        for (SeriesKind k : {SeriesKind::HistCount, SeriesKind::HistSum,
                             SeriesKind::HistMax}) {
            series_.push_back({name + seriesKindSuffix(k), k});
            Source src;
            src.hist = h;
            src.kind = k;
            sources_.push_back(src);
        }
    };

    if (patterns.empty()) {
        for (const auto &kv : stats_.counters())
            addCounter(kv.first);
        for (const auto &kv : stats_.histograms())
            addHistogram(kv.first);
    } else {
        for (const std::string &p : patterns) {
            for (const std::string &n : stats_.counterNamesMatching(p))
                addCounter(n);
            for (const std::string &n :
                 stats_.histogramNamesMatching(p))
                addHistogram(n);
        }
    }
    row_.resize(series_.size());
}

double
TimeSeriesSink::readLane(const Source &s, unsigned d) const
{
    switch (s.kind) {
      case SeriesKind::Counter:
        return s.counter->laneValue(d);
      case SeriesKind::HistCount:
        return static_cast<double>(s.hist->laneCount(d));
      case SeriesKind::HistSum:
        return s.hist->laneSum(d);
      case SeriesKind::HistMax:
        return static_cast<double>(s.hist->laneMax(d));
    }
    return 0;
}

double
TimeSeriesSink::readSource(const Source &s) const
{
    switch (s.kind) {
      case SeriesKind::Counter:
        return s.counter->value();
      case SeriesKind::HistCount:
        return static_cast<double>(s.hist->count());
      case SeriesKind::HistSum:
        return s.hist->sum();
      case SeriesKind::HistMax:
        return static_cast<double>(s.hist->max());
    }
    return 0;
}

Tick
TimeSeriesSink::nextWatermark() const
{
    Tick wm = ~Tick{0};
    if (nextSample_ > 0 && nextSample_ < wm)
        wm = nextSample_;
    if (nextBeat_ > 0 && nextBeat_ < wm)
        wm = nextBeat_;
    return wm;
}

Tick
TimeSeriesSink::onAdvance(Tick to)
{
    // Replay every boundary up to (and including) the tick being
    // advanced to, in tick order; a sample and a beat landing on the
    // same tick emit the sample first (only host-side output ordering
    // is at stake — the series never sees beats).
    while (true) {
        const bool sampleDue = nextSample_ > 0 && nextSample_ <= to;
        const bool beatDue = nextBeat_ > 0 && nextBeat_ <= to;
        if (!sampleDue && !beatDue)
            break;
        if (sampleDue && (!beatDue || nextSample_ <= nextBeat_)) {
            takeSample(nextSample_);
            nextSample_ += opt_.sampleEvery;
        } else {
            emitBeat(nextBeat_);
            nextBeat_ += opt_.progressEvery;
        }
    }
    return nextWatermark();
}

void
TimeSeriesSink::takeSample(Tick at)
{
    for (std::size_t i = 0; i < sources_.size(); ++i)
        row_[i] = readSource(sources_[i]);
    StatsTimeSeries &ts = stats_.timeSeries();
    ts.ticks.push_back(at);
    ts.samples.push_back(row_);
    if (writing_)
        writer_.addSample(at, row_);
    ++samplesTaken_;
}

void
TimeSeriesSink::emitBeat(Tick at)
{
    ProgressBeat b;
    b.tick = at;
    b.events = eq_.eventsFired();
    b.hostSeconds = hostNow() - firstBeatHostTime_;
    b.eventsPerSec = b.hostSeconds > 0
                         ? static_cast<double>(b.events) / b.hostSeconds
                         : 0;
    if (fractionDone_)
        b.fractionDone = fractionDone_();
    if (opt_.onBeat)
        opt_.onBeat(b);
    else
        printProgressBeat(b);
}

} // namespace tako::mon
