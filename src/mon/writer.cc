#include "mon/writer.hh"

#include <cmath>
#include <cstring>
#include <limits>

namespace tako::mon
{

namespace
{

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    put32(p, static_cast<std::uint32_t>(v));
    put32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/** True iff @p v is an exact integer representable as int64. */
bool
isIntegral(double v)
{
    // 2^63 itself is exactly representable but overflows int64; keep
    // strictly inside the representable window on both sides.
    return std::nearbyint(v) == v &&
           v >= -9223372036854775808.0 && v < 9223372036854775808.0;
}

} // namespace

const char *
seriesKindSuffix(SeriesKind kind)
{
    switch (kind) {
      case SeriesKind::Counter: return "";
      case SeriesKind::HistCount: return ".count";
      case SeriesKind::HistSum: return ".sum";
      case SeriesKind::HistMax: return ".max";
    }
    return "?";
}

MonWriter::~MonWriter()
{
    if (file_) {
        // Abandoned without close(): leave the invalid placeholder
        // header in place so readers reject the file.
        std::fclose(file_);
        file_ = nullptr;
    }
}

bool
MonWriter::open(const std::string &path, Tick interval,
                std::vector<SeriesDesc> series, Options opt)
{
    if (file_) {
        setError("open() on an already-open writer");
        return false;
    }
    if (interval == 0) {
        setError("sampling interval must be nonzero");
        return false;
    }
    if (opt.chunkSamples == 0)
        opt.chunkSamples = 1;
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_) {
        setError("cannot create '" + path + "'");
        return false;
    }
    opt_ = opt;
    error_.clear();
    seriesCount_ = series.size();
    samples_ = chunkFirstIndex_ = 0;
    lastTick_ = 0;
    anySample_ = false;
    ticks_.clear();
    rows_.clear();

    std::vector<std::uint8_t> dir;
    for (const SeriesDesc &s : series) {
        dir.push_back(static_cast<std::uint8_t>(s.kind));
        putVarint(dir, s.name.size());
        dir.insert(dir.end(), s.name.begin(), s.name.end());
    }

    // Placeholder header: sampleCount carries the impossible sentinel
    // until close() patches the real value in, so an abandoned file is
    // rejected even when no chunk was ever flushed.
    std::uint8_t hdr[monFileHeaderBytes] = {};
    std::memcpy(hdr, monMagic.data(), monMagic.size());
    put32(hdr + 8, monVersion);
    put32(hdr + 12, 0); // flags
    put64(hdr + 16, interval);
    put32(hdr + 24, static_cast<std::uint32_t>(series.size()));
    put32(hdr + 28, static_cast<std::uint32_t>(dir.size()));
    put64(hdr + 32, monUnpatchedCount); // patched on close
    std::uint8_t dirCrc[4];
    put32(dirCrc, crc32(dir.data(), dir.size()));
    if (std::fwrite(hdr, 1, sizeof(hdr), file_) != sizeof(hdr) ||
        std::fwrite(dir.data(), 1, dir.size(), file_) != dir.size() ||
        std::fwrite(dirCrc, 1, sizeof(dirCrc), file_) !=
            sizeof(dirCrc)) {
        setError("header write failed");
        return false;
    }
    return true;
}

void
MonWriter::addSample(Tick tick, const std::vector<double> &values)
{
    if (!file_ || !error_.empty())
        return; // sticky error; close() reports it
    if (values.size() != seriesCount_) {
        setError("row arity " + std::to_string(values.size()) +
                 " != " + std::to_string(seriesCount_) + " series");
        return;
    }
    if (anySample_ && tick <= lastTick_) {
        setError("non-increasing tick at sample " +
                 std::to_string(samples_));
        return;
    }
    lastTick_ = tick;
    anySample_ = true;
    ticks_.push_back(tick);
    rows_.insert(rows_.end(), values.begin(), values.end());
    ++samples_;
    if (ticks_.size() >= opt_.chunkSamples)
        flushChunk();
}

void
MonWriter::flushChunk()
{
    const std::size_t n = ticks_.size();
    if (n == 0)
        return;

    std::vector<std::uint8_t> payload;
    // Tick column: delta context resets at the chunk boundary, so the
    // first value is the absolute tick and chunks decode independently.
    Tick prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
        putVarint(payload, ticks_[i] - prev);
        prev = ticks_[i];
    }
    // Value columns, in directory order. A column uses integer deltas
    // only when every value it holds in this chunk is integral — the
    // tag is a pure function of the sampled values, never of the host.
    for (std::size_t s = 0; s < seriesCount_; ++s) {
        bool integral = true;
        for (std::size_t i = 0; i < n; ++i) {
            if (!isIntegral(rows_[i * seriesCount_ + s])) {
                integral = false;
                break;
            }
        }
        payload.push_back(integral ? colIntDeltas : colRawDoubles);
        if (integral) {
            std::uint64_t prevBits = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const auto v = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(
                        rows_[i * seriesCount_ + s]));
                // Wrapping difference: lossless for any int64 pair.
                putVarint(payload,
                          zigzagEncode(static_cast<std::int64_t>(
                              v - prevBits)));
                prevBits = v;
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                std::uint64_t bits;
                static_assert(sizeof(bits) ==
                              sizeof(rows_[i * seriesCount_ + s]));
                std::memcpy(&bits, &rows_[i * seriesCount_ + s],
                            sizeof(bits));
                std::uint8_t raw[8];
                put64(raw, bits);
                payload.insert(payload.end(), raw, raw + 8);
            }
        }
    }

    std::uint8_t hdr[monChunkHeaderBytes];
    put32(hdr, monChunkMagic);
    put32(hdr + 4, static_cast<std::uint32_t>(n));
    put32(hdr + 8, static_cast<std::uint32_t>(payload.size()));
    put32(hdr + 12, crc32(payload.data(), payload.size()));
    put64(hdr + 16, chunkFirstIndex_);
    if (std::fwrite(hdr, 1, sizeof(hdr), file_) != sizeof(hdr) ||
        std::fwrite(payload.data(), 1, payload.size(), file_) !=
            payload.size()) {
        setError("chunk write failed");
        return;
    }
    chunkFirstIndex_ = samples_;
    ticks_.clear();
    rows_.clear();
}

bool
MonWriter::close()
{
    if (!file_) {
        if (error_.empty())
            setError("close() without open()");
        return false;
    }
    flushChunk();
    if (error_.empty()) {
        std::uint8_t count[8];
        put64(count, samples_);
        if (std::fseek(file_, 32, SEEK_SET) != 0 ||
            std::fwrite(count, 1, sizeof(count), file_) !=
                sizeof(count))
            setError("header patch failed");
    }
    const bool flushOk = std::fclose(file_) == 0;
    file_ = nullptr;
    if (!flushOk && error_.empty())
        setError("final flush failed");
    return error_.empty();
}

void
MonWriter::setError(const std::string &msg)
{
    if (error_.empty())
        error_ = "takomon write: " + msg;
}

} // namespace tako::mon
