#include "mon/reader.hh"

#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace tako::mon
{

namespace
{

std::uint32_t
get32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           static_cast<std::uint64_t>(get32(p + 4)) << 32;
}

} // namespace

MonReader::~MonReader()
{
    close();
}

bool
MonReader::fail(const std::string &msg)
{
    if (error_.empty())
        error_ = "takomon read: " + msg;
    // End iteration immediately; the mapping stays for error reporting.
    ticks_.clear();
    rows_.clear();
    rowInChunk_ = 0;
    chunkIdx_ = chunks_.size();
    return false;
}

bool
MonReader::open(const std::string &path)
{
    close();
    error_.clear();

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return fail("cannot open '" + path + "'");
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return fail("cannot stat '" + path + "'");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < monFileHeaderBytes) {
        ::close(fd);
        return fail("'" + path + "' is shorter than a file header");
    }
    void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t *>(map);
        mapped_ = true;
    } else {
        // mmap can fail on exotic filesystems; fall back to a copy.
        heap_.resize(size_);
        std::size_t got = 0;
        while (got < size_) {
            const ssize_t n =
                ::pread(fd, heap_.data() + got, size_ - got,
                        static_cast<off_t>(got));
            if (n <= 0)
                break;
            got += static_cast<std::size_t>(n);
        }
        if (got != size_) {
            ::close(fd);
            heap_.clear();
            return fail("cannot read '" + path + "'");
        }
        data_ = heap_.data();
        mapped_ = false;
    }
    ::close(fd);

    // --- header ---------------------------------------------------------
    if (std::memcmp(data_, monMagic.data(), monMagic.size()) != 0) {
        const bool err =
            fail("'" + path + "': bad magic (not a takomon file)");
        close();
        return err;
    }
    const std::uint32_t version = get32(data_ + 8);
    if (version != monVersion) {
        const bool err =
            fail("'" + path + "': format version " +
                 std::to_string(version) + " (this build reads v" +
                 std::to_string(monVersion) + ")");
        close();
        return err;
    }
    const std::uint32_t flags = get32(data_ + 12);
    if (flags != 0) {
        const bool err = fail("'" + path + "': unknown flag bits 0x" +
                              std::to_string(flags));
        close();
        return err;
    }
    interval_ = get64(data_ + 16);
    if (interval_ == 0) {
        const bool err = fail("'" + path + "': zero sample interval");
        close();
        return err;
    }
    const std::uint32_t seriesCount = get32(data_ + 24);
    const std::uint32_t dirBytes = get32(data_ + 28);
    sampleCount_ = get64(data_ + 32);

    // --- series directory ----------------------------------------------
    if (monFileHeaderBytes + dirBytes + 4 > size_) {
        const bool err =
            fail("'" + path + "': truncated in the series directory");
        close();
        return err;
    }
    const std::uint8_t *dir = data_ + monFileHeaderBytes;
    const std::uint32_t dirCrc = get32(dir + dirBytes);
    const std::uint32_t gotCrc = crc32(dir, dirBytes);
    if (gotCrc != dirCrc) {
        const bool err = fail(
            "'" + path + "': directory CRC mismatch (stored " +
            std::to_string(dirCrc) + ", computed " +
            std::to_string(gotCrc) + ")");
        close();
        return err;
    }
    const std::uint8_t *p = dir;
    const std::uint8_t *dirEnd = dir + dirBytes;
    series_.reserve(seriesCount);
    for (std::uint32_t i = 0; i < seriesCount; ++i) {
        if (p == dirEnd) {
            const bool err =
                fail("'" + path + "': directory ends at series " +
                     std::to_string(i) + " of " +
                     std::to_string(seriesCount));
            close();
            return err;
        }
        const std::uint8_t kind = *p++;
        std::uint64_t nameLen;
        if (kind >= numSeriesKinds ||
            !getVarint(p, dirEnd, nameLen) ||
            nameLen > static_cast<std::uint64_t>(dirEnd - p)) {
            const bool err = fail("'" + path + "': bad series entry " +
                                  std::to_string(i));
            close();
            return err;
        }
        SeriesDesc d;
        d.kind = static_cast<SeriesKind>(kind);
        d.name.assign(reinterpret_cast<const char *>(p),
                      static_cast<std::size_t>(nameLen));
        p += nameLen;
        series_.push_back(std::move(d));
    }
    if (p != dirEnd) {
        const bool err = fail(
            "'" + path + "': " + std::to_string(dirEnd - p) +
            " trailing directory bytes after the last series");
        close();
        return err;
    }

    // --- chunk directory walk (headers only; CRCs checked lazily) -------
    std::size_t off = monFileHeaderBytes + dirBytes + 4;
    std::uint64_t samples = 0;
    while (off != size_) {
        if (off + monChunkHeaderBytes > size_) {
            const bool err = fail(
                "'" + path + "': truncated at chunk " +
                std::to_string(chunks_.size()) +
                " header (file ends early)");
            close();
            return err;
        }
        const std::uint8_t *h = data_ + off;
        if (get32(h) != monChunkMagic) {
            const bool err = fail("'" + path + "': chunk " +
                                  std::to_string(chunks_.size()) +
                                  ": bad magic");
            close();
            return err;
        }
        Chunk c;
        c.samples = get32(h + 4);
        c.payloadBytes = get32(h + 8);
        c.crc = get32(h + 12);
        const std::uint64_t firstIndex = get64(h + 16);
        c.payloadOff = off + monChunkHeaderBytes;
        if (c.samples == 0) {
            const bool err = fail("'" + path + "': chunk " +
                                  std::to_string(chunks_.size()) +
                                  ": empty chunk");
            close();
            return err;
        }
        if (firstIndex != samples) {
            const bool err = fail(
                "'" + path + "': chunk " +
                std::to_string(chunks_.size()) + ": firstIndex " +
                std::to_string(firstIndex) + " != running count " +
                std::to_string(samples));
            close();
            return err;
        }
        if (c.payloadOff + c.payloadBytes > size_) {
            const bool err = fail(
                "'" + path + "': truncated in chunk " +
                std::to_string(chunks_.size()) +
                " payload (file ends early)");
            close();
            return err;
        }
        samples += c.samples;
        off = c.payloadOff + c.payloadBytes;
        chunks_.push_back(c);
    }
    if (samples != sampleCount_) {
        const bool err =
            sampleCount_ == monUnpatchedCount
                ? fail("'" + path + "': unpatched sample count " +
                       "(unclosed writer?)")
                : fail("'" + path + "': header says " +
                       std::to_string(sampleCount_) +
                       " samples, chunks hold " +
                       std::to_string(samples));
        close();
        return err;
    }

    rewind();
    return true;
}

void
MonReader::close()
{
    if (data_ && mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
    heap_.clear();
    heap_.shrink_to_fit();
    series_.clear();
    chunks_.clear();
    interval_ = 0;
    sampleCount_ = 0;
    samplesRead_ = 0;
    ticks_.clear();
    rows_.clear();
    rowInChunk_ = 0;
    chunkIdx_ = 0;
    lastTick_ = 0;
    entered_ = false;
}

void
MonReader::rewind()
{
    samplesRead_ = 0;
    chunkIdx_ = 0;
    rowInChunk_ = 0;
    lastTick_ = 0;
    entered_ = false;
    ticks_.clear();
    rows_.clear();
    if (isOpen() && error_.empty() && !chunks_.empty())
        entered_ = enterChunk(0);
}

bool
MonReader::enterChunk(std::size_t idx)
{
    Chunk &c = chunks_[idx];
    if (!c.crcChecked) {
        const std::uint32_t got =
            crc32(data_ + c.payloadOff, c.payloadBytes);
        if (got != c.crc)
            return fail("chunk " + std::to_string(idx) +
                        ": CRC mismatch (stored " +
                        std::to_string(c.crc) + ", computed " +
                        std::to_string(got) + ")");
        c.crcChecked = true;
    }

    const std::uint8_t *p = data_ + c.payloadOff;
    const std::uint8_t *end = p + c.payloadBytes;
    const std::uint32_t n = c.samples;

    // Tick column: delta context restarts at 0, first value absolute.
    // Ticks must keep increasing file-wide.
    ticks_.clear();
    ticks_.reserve(n);
    Tick prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint64_t d;
        if (!getVarint(p, end, d))
            return fail("chunk " + std::to_string(idx) +
                        ": truncated tick varint");
        const Tick t = prev + d;
        // Strictly increasing file-wide: within a chunk a zero delta
        // repeats a tick; across a boundary the (absolute) first tick
        // must clear the previous chunk's last row.
        if ((i > 0 && d == 0) || (i == 0 && idx > 0 && t <= lastTick_))
            return fail("chunk " + std::to_string(idx) +
                        ": non-increasing sample tick");
        prev = t;
        ticks_.push_back(t);
    }

    // Value columns, directory order.
    rows_.assign(std::size_t{n} * series_.size(), 0.0);
    for (std::size_t s = 0; s < series_.size(); ++s) {
        if (p == end)
            return fail("chunk " + std::to_string(idx) +
                        ": payload ends before column " +
                        std::to_string(s));
        const std::uint8_t tag = *p++;
        if (tag == colIntDeltas) {
            std::uint64_t prevBits = 0;
            for (std::uint32_t i = 0; i < n; ++i) {
                std::uint64_t v;
                if (!getVarint(p, end, v))
                    return fail("chunk " + std::to_string(idx) +
                                ": truncated value varint in column " +
                                std::to_string(s));
                prevBits += static_cast<std::uint64_t>(zigzagDecode(v));
                rows_[std::size_t{i} * series_.size() + s] =
                    static_cast<double>(
                        static_cast<std::int64_t>(prevBits));
            }
        } else if (tag == colRawDoubles) {
            if (end - p < static_cast<std::ptrdiff_t>(8 * n))
                return fail("chunk " + std::to_string(idx) +
                            ": truncated raw column " +
                            std::to_string(s));
            for (std::uint32_t i = 0; i < n; ++i) {
                const std::uint64_t bits = get64(p);
                p += 8;
                double v;
                static_assert(sizeof(v) == sizeof(bits));
                std::memcpy(&v, &bits, sizeof(v));
                rows_[std::size_t{i} * series_.size() + s] = v;
            }
        } else {
            return fail("chunk " + std::to_string(idx) +
                        ": unknown column encoding " +
                        std::to_string(tag));
        }
    }
    if (p != end)
        return fail("chunk " + std::to_string(idx) + ": " +
                    std::to_string(end - p) +
                    " payload bytes left after the last column");

    chunkIdx_ = idx;
    rowInChunk_ = 0;
    return true;
}

bool
MonReader::next(Tick &tick, std::vector<double> &values)
{
    if (!error_.empty())
        return false;
    while (entered_ && rowInChunk_ >= ticks_.size()) {
        if (chunkIdx_ + 1 >= chunks_.size())
            return false; // clean end of file
        if (!enterChunk(chunkIdx_ + 1))
            return false;
    }
    if (!entered_ || ticks_.empty())
        return false;

    tick = ticks_[rowInChunk_];
    lastTick_ = tick;
    values.assign(
        rows_.begin() +
            static_cast<std::ptrdiff_t>(std::size_t{rowInChunk_} *
                                        series_.size()),
        rows_.begin() +
            static_cast<std::ptrdiff_t>(
                std::size_t{rowInChunk_ + 1} * series_.size()));
    ++rowInChunk_;
    ++samplesRead_;
    return true;
}

} // namespace tako::mon
